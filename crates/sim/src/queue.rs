//! The future-event list.

use crate::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// `EventQueue` is the heart of the discrete-event simulator: events are
/// scheduled at absolute times (or relative delays from "now") and popped in
/// non-decreasing time order. Two events scheduled for the same cycle are
/// delivered in scheduling order, which makes simulations reproducible
/// independent of heap internals.
///
/// Popping advances the queue's clock; scheduling into the past panics,
/// because causality violations are always simulator bugs.
///
/// # Examples
///
/// ```
/// use um_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(Cycles::new(5), 'b');
/// q.schedule_at(Cycles::new(5), 'c'); // same time: FIFO order
/// q.schedule_at(Cycles::new(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Cycles,
    seq: u64,
}

#[derive(Clone, Debug)]
struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

// Min-heap by (time, seq): BinaryHeap is a max-heap, so invert the ordering.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: Cycles::ZERO,
            seq: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`Self::now`].
    pub fn schedule_at(&mut self, at: Cycles, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` after `delay` cycles from now.
    pub fn schedule(&mut self, delay: Cycles, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at `at` without the causality assertion.
    ///
    /// Exists only so sanitizer tests can inject an out-of-order event and
    /// assert the `event-monotonicity` checker reports it; simulation code
    /// must use [`Self::schedule_at`].
    #[cfg(feature = "sim-sanitizer")]
    #[doc(hidden)]
    pub fn schedule_at_unchecked(&mut self, at: Cycles, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let entry = self.heap.pop()?;
        // With the sanitizer on, a causality break becomes a structured
        // violation the caller can observe; without it, it stays the
        // debug assertion it always was.
        #[cfg(feature = "sim-sanitizer")]
        if entry.time < self.now {
            crate::sanitizer::report(
                "event-monotonicity",
                format!(
                    "event queue produced an out-of-order event: time {} behind clock {}",
                    entry.time, self.now
                ),
            );
        }
        #[cfg(not(feature = "sim-sanitizer"))]
        debug_assert!(entry.time >= self.now, "heap produced out-of-order event");
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(30), 3);
        q.schedule_at(Cycles::new(10), 1);
        q.schedule_at(Cycles::new(20), 2);
        assert_eq!(q.pop(), Some((Cycles::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycles::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycles::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Cycles::new(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles::new(7), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop_only() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(50), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles::new(50));
    }

    #[test]
    fn relative_schedule_uses_now() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), 'a');
        q.pop();
        q.schedule(Cycles::new(5), 'b');
        assert_eq!(q.pop(), Some((Cycles::new(15), 'b')));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), ());
        q.pop();
        q.schedule_at(Cycles::new(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(9), ());
        assert_eq!(q.peek_time(), Some(Cycles::new(9)));
        assert_eq!(q.now(), Cycles::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), ());
        q.pop();
        q.schedule(Cycles::new(100), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), Cycles::new(10));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(1), 1u32);
        q.schedule_at(Cycles::new(100), 100);
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push(e);
            if e == 1 {
                // Schedule a follow-up between the two pending times.
                q.schedule_at(t + Cycles::new(10), 11);
            }
        }
        assert_eq!(seen, vec![1, 11, 100]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped timestamps are always non-decreasing, regardless of the
        /// scheduling order.
        #[test]
        fn pop_order_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule_at(Cycles::new(t), t);
            }
            let mut last = Cycles::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Every scheduled event is delivered exactly once.
        #[test]
        fn conservation(times in proptest::collection::vec(0u64..10_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(Cycles::new(t), i);
            }
            let mut delivered: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            delivered.sort_unstable();
            prop_assert_eq!(delivered, (0..times.len()).collect::<Vec<_>>());
        }

        /// Same-time events preserve scheduling order (stability).
        #[test]
        fn stable_ties(n in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule_at(Cycles::new(42), i);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        }
    }
}
