//! The future-event list: an arena-pooled hierarchical calendar queue.
//!
//! The queue is the hottest structure in the simulator — every arrival,
//! segment completion, network delivery and timeout passes through it. The
//! implementation is a hierarchical timing wheel ([`LEVELS`] levels of
//! [`SLOTS`] slots, one `u64` occupancy bitmap per level) with a sorted
//! overflow level for events beyond the wheel horizon, backed by an arena
//! of pooled event nodes so the steady-state loop allocates nothing:
//!
//! - **push** is O(1): one xor + leading-zeros picks the level, the node is
//!   appended to that bucket's intrusive FIFO chain.
//! - **pop** is O(1) amortized: delivery walks the detached chain of the
//!   current cycle's bucket; each event cascades down at most once per
//!   level over its whole lifetime.
//! - **idle gaps cost O(levels)**, not O(gap): the occupancy bitmaps find
//!   the next non-empty slot with a mask and `trailing_zeros`, so the
//!   wheel jumps straight to the next event time (next-event skipping).
//!
//! Delivery order is *exactly* the `(time, seq)` order the previous
//! `BinaryHeap` implementation produced — the FIFO tie-break contract is
//! load-bearing for every determinism test and committed result in the
//! repo, and the differential proptest in `tests/queue_model.rs` pins the
//! two implementations against each other.

use crate::Cycles;
use std::collections::BTreeMap;

/// Bits of time covered by one wheel level (64 slots).
const LEVEL_BITS: u32 = 6;
/// Slots per level; a level's occupancy fits one `u64` bitmap.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// Bits of time the whole wheel spans (events further out overflow).
const WHEEL_BITS: u32 = LEVEL_BITS * LEVELS as u32;
/// Null link in the intrusive bucket chains.
const NIL: u32 = u32::MAX;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// `EventQueue` is the heart of the discrete-event simulator: events are
/// scheduled at absolute times (or relative delays from "now") and popped in
/// non-decreasing time order. Two events scheduled for the same cycle are
/// delivered in scheduling order, which makes simulations reproducible
/// independent of the queue's internals.
///
/// Popping advances the queue's clock; scheduling into the past panics,
/// because causality violations are always simulator bugs.
///
/// # Examples
///
/// ```
/// use um_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(Cycles::new(5), 'b');
/// q.schedule_at(Cycles::new(5), 'c'); // same time: FIFO order
/// q.schedule_at(Cycles::new(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    /// Arena of pooled event nodes; freed slots are recycled via `free`,
    /// so a steady-state schedule/pop loop never allocates.
    nodes: Vec<Node<E>>,
    /// Free-list of recycled arena slots (LIFO for cache warmth).
    free: Vec<u32>,
    /// Bucket FIFO chain heads, `level * SLOTS + slot`.
    heads: Vec<u32>,
    /// Bucket FIFO chain tails.
    tails: Vec<u32>,
    /// Per-level slot occupancy bitmaps (bit `s` = bucket `s` non-empty).
    occ: [u64; LEVELS],
    /// Sorted overflow level: events beyond the wheel horizon, keyed by
    /// `(time, seq)` so refills preserve delivery order.
    overflow: BTreeMap<(u64, u64), u32>,
    /// Detached chain of the bucket currently being delivered (all nodes
    /// share the current timestamp; popped front-to-front in seq order).
    ready: u32,
    /// Events behind the wheel base, as `(time, seq, node)`. Unreachable
    /// through the checked API (`schedule_at` forbids the past); only the
    /// sanitizer's unchecked injection path can populate it. Kept sorted.
    underflow: Vec<(u64, u64, u32)>,
    /// The wheel's position: start of the level-0 window being examined.
    /// Equal to `now` between operations (unless an injected causality
    /// break moved the public clock behind it).
    base: u64,
    now: Cycles,
    seq: u64,
    len: usize,
}

/// One pooled event node. `event` is `None` only while the slot sits on
/// the free list. The tie-break `seq` is deliberately *not* stored here:
/// inside the wheel, FIFO order is carried by bucket append order (and
/// preserved across cascades), while the overflow and underflow side
/// structures key on `(time, seq)` themselves — keeping the node small
/// matters, because cascades re-touch nodes across a fleet-sized arena.
#[derive(Clone, Debug)]
struct Node<E> {
    time: u64,
    next: u32,
    event: Option<E>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue whose event pool can hold `capacity` pending
    /// events before growing. Sizing the pool to the expected peak event
    /// population keeps the steady-state loop allocation-free from the
    /// first event on.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            heads: vec![NIL; LEVELS * SLOTS],
            tails: vec![NIL; LEVELS * SLOTS],
            occ: [0; LEVELS],
            overflow: BTreeMap::new(),
            ready: NIL,
            underflow: Vec::new(),
            base: 0,
            now: Cycles::ZERO,
            seq: 0,
            len: 0,
        }
    }

    /// Grows the event pool to hold at least `additional` more pending
    /// events without reallocating.
    pub fn reserve_events(&mut self, additional: usize) {
        let spare = self.free.len() + (self.nodes.capacity() - self.nodes.len());
        if additional > spare {
            self.nodes.reserve(additional - self.free.len());
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Total events scheduled since creation or the last [`Self::clear`]
    /// (the FIFO tie-break sequence counter).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Arena slots ever allocated by the event pool. A steady-state
    /// schedule/pop loop recycles slots instead of growing this.
    pub fn pool_size(&self) -> usize {
        self.nodes.len()
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`Self::now`].
    pub fn schedule_at(&mut self, at: Cycles, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        self.insert(at, event);
    }

    /// Schedules `event` after `delay` cycles from now.
    ///
    /// # Panics
    ///
    /// Panics if `now + delay` overflows the cycle clock. A delay that far
    /// out (2⁶⁴ cycles is ~290 years at 2 GHz) is always a unit-conversion
    /// bug upstream; scheduling it "at infinity" — what the previous
    /// `saturating_add` implementation silently did — would park the event
    /// at `Cycles::MAX` and quietly distort any run that drains the queue.
    pub fn schedule(&mut self, delay: Cycles, event: E) {
        let Some(at) = self.now.checked_add(delay) else {
            #[cfg(feature = "sim-sanitizer")]
            crate::sanitizer::report(
                "schedule-overflow",
                format!(
                    "relative schedule overflows the cycle clock: now={} delay={delay}",
                    self.now
                ),
            );
            panic!(
                "scheduling delay overflows the cycle clock: now={} delay={delay}",
                self.now
            );
        };
        self.schedule_at(at, event);
    }

    /// Schedules `event` at `at` without the causality assertion.
    ///
    /// Exists only so sanitizer tests can inject an out-of-order event and
    /// assert the `event-monotonicity` checker reports it; simulation code
    /// must use [`Self::schedule_at`].
    #[cfg(feature = "sim-sanitizer")]
    #[doc(hidden)]
    pub fn schedule_at_unchecked(&mut self, at: Cycles, event: E) {
        self.insert(at, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        // Injected causality breaks (and only those) live in `underflow`;
        // they are globally earliest, exactly as they were heap-minimal in
        // the BinaryHeap implementation.
        if !self.underflow.is_empty() {
            let (_, _, idx) = self.underflow.remove(0);
            return Some(self.deliver(idx));
        }
        loop {
            if self.ready != NIL {
                let idx = self.ready;
                self.ready = self.nodes[idx as usize].next;
                return Some(self.deliver(idx));
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycles> {
        if let Some(&(t, _, _)) = self.underflow.first() {
            return Some(Cycles::new(t));
        }
        if self.ready != NIL {
            let head = &self.nodes[self.ready as usize];
            return Some(Cycles::new(head.time));
        }
        if self.len == 0 {
            return None;
        }
        for level in 0..LEVELS {
            if self.occ[level] == 0 {
                continue;
            }
            let cur = ((self.base >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
            let masked = self.occ[level] & (!0u64 << cur);
            debug_assert!(masked != 0, "occupied slots behind the wheel position");
            let slot = masked.trailing_zeros() as u64;
            if level == 0 {
                return Some(Cycles::new((self.base & !(SLOTS as u64 - 1)) | slot));
            }
            // Upper-level bucket: slots are wider than one cycle, so the
            // earliest node must be scanned for. Peeking is off the hot
            // path (pop cascades instead of scanning).
            let mut n = self.heads[level * SLOTS + slot as usize];
            let mut min = u64::MAX;
            while n != NIL {
                min = min.min(self.nodes[n as usize].time);
                n = self.nodes[n as usize].next;
            }
            return Some(Cycles::new(min));
        }
        self.overflow
            .first_key_value()
            .map(|(&(t, _), _)| Cycles::new(t))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events and resets the tie-break sequence counter,
    /// keeping the clock and the pooled arena capacity. A cleared queue
    /// behaves exactly like a fresh one at the same clock: before the
    /// counter was reset here, a reused queue's internal tie-break state
    /// depended on pre-clear history.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.occ = [0; LEVELS];
        self.overflow.clear();
        self.ready = NIL;
        self.underflow.clear();
        self.base = self.now.raw();
        self.seq = 0;
        self.len = 0;
    }

    // ---- internals ----------------------------------------------------

    /// Allocates a pooled node for `(time, event)`.
    fn alloc(&mut self, time: u64, event: E) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = Node {
                    time,
                    next: NIL,
                    event: Some(event),
                };
                idx
            }
            None => {
                let idx = self.nodes.len();
                assert!(
                    idx < NIL as usize,
                    "event pool exhausted: more than u32::MAX - 1 pending events"
                );
                self.nodes.push(Node {
                    time,
                    next: NIL,
                    event: Some(event),
                });
                idx as u32
            }
        }
    }

    /// Inserts an event, routing it to the wheel, the overflow level, or
    /// (for injected causality breaks only) the underflow list.
    fn insert(&mut self, at: Cycles, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let t = at.raw();
        let idx = self.alloc(t, event);
        self.len += 1;
        if t < self.base {
            // Only reachable through the sanitizer's unchecked injection
            // path: keep the list sorted so delivery stays (time, seq).
            let pos = self
                .underflow
                .partition_point(|&(ut, useq, _)| (ut, useq) <= (t, seq));
            self.underflow.insert(pos, (t, seq, idx));
        } else if (t ^ self.base) >> WHEEL_BITS != 0 {
            self.overflow.insert((t, seq), idx);
        } else {
            self.place(idx);
        }
    }

    /// Links a node into the wheel bucket its time selects, relative to
    /// the current base. The caller guarantees the time is within the
    /// wheel horizon.
    fn place(&mut self, idx: u32) {
        let t = self.nodes[idx as usize].time;
        let x = t ^ self.base;
        debug_assert!(x >> WHEEL_BITS == 0, "placing a node beyond the wheel");
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
        };
        let slot = ((t >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let bucket = level * SLOTS + slot;
        self.nodes[idx as usize].next = NIL;
        if self.tails[bucket] == NIL {
            self.heads[bucket] = idx;
        } else {
            let tail = self.tails[bucket] as usize;
            self.nodes[tail].next = idx;
        }
        self.tails[bucket] = idx;
        self.occ[level] |= 1 << slot;
    }

    /// One step of next-event skipping: either detaches the earliest
    /// level-0 bucket into `ready`, cascades the earliest upper-level
    /// bucket one level down, or refills the wheel from the overflow
    /// level. The caller guarantees at least one event is pending.
    fn advance(&mut self) {
        let Some(level) = (0..LEVELS).find(|&k| self.occ[k] != 0) else {
            self.refill_from_overflow();
            return;
        };
        let shift = LEVEL_BITS * level as u32;
        let cur = ((self.base >> shift) & (SLOTS as u64 - 1)) as u32;
        let masked = self.occ[level] & (!0u64 << cur);
        debug_assert!(
            masked != 0 && self.occ[level] & !(!0u64 << cur) == 0,
            "occupied slots behind the wheel position"
        );
        let slot = masked.trailing_zeros() as usize;
        let bucket = level * SLOTS + slot;
        let mut node = self.heads[bucket];
        self.heads[bucket] = NIL;
        self.tails[bucket] = NIL;
        self.occ[level] &= !(1u64 << slot);
        if level == 0 {
            // The bucket spans exactly one cycle: its chain is already the
            // (time, seq)-ordered delivery sequence.
            self.base = (self.base & !(SLOTS as u64 - 1)) | slot as u64;
            self.ready = node;
        } else {
            // Jump the wheel to the start of the slot and re-place its
            // chain one or more levels down, preserving append order so
            // same-time events keep their seq order.
            let upper = !0u64 << (shift + LEVEL_BITS);
            self.base = (self.base & upper) | ((slot as u64) << shift);
            while node != NIL {
                let next = self.nodes[node as usize].next;
                self.place(node);
                node = next;
            }
        }
    }

    /// Moves the earliest overflow window into the (empty) wheel.
    fn refill_from_overflow(&mut self) {
        let (&(t0, _), _) = self
            .overflow
            .first_key_value()
            .expect("advance called with events pending");
        let top = t0 >> WHEEL_BITS;
        self.base = top << WHEEL_BITS;
        let batch = if top == u64::MAX >> WHEEL_BITS {
            std::mem::take(&mut self.overflow)
        } else {
            let rest = self.overflow.split_off(&((top + 1) << WHEEL_BITS, 0));
            std::mem::replace(&mut self.overflow, rest)
        };
        // BTreeMap iteration is (time, seq)-ordered, so append order in
        // the target buckets preserves the FIFO tie-break.
        for (_, idx) in batch {
            self.place(idx);
        }
    }

    /// Takes a node's event out, recycles the arena slot, and advances the
    /// public clock, checking event monotonicity.
    fn deliver(&mut self, idx: u32) -> (Cycles, E) {
        let node = &mut self.nodes[idx as usize];
        let time = Cycles::new(node.time);
        let event = node
            .event
            .take()
            .expect("linked node always holds an event");
        self.free.push(idx);
        self.len -= 1;
        // With the sanitizer on, a causality break becomes a structured
        // violation the caller can observe; without it, it stays the
        // debug assertion it always was.
        #[cfg(feature = "sim-sanitizer")]
        if time < self.now {
            crate::sanitizer::report(
                "event-monotonicity",
                format!(
                    "event queue produced an out-of-order event: time {} behind clock {}",
                    time, self.now
                ),
            );
        }
        #[cfg(not(feature = "sim-sanitizer"))]
        debug_assert!(time >= self.now, "queue produced out-of-order event");
        self.now = time;
        (time, event)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Reference implementation kept for differential testing and as the
/// engine benchmark's baseline. Not for simulation use: the um-tidy
/// `raw-binary-heap` rule keeps `BinaryHeap` out of sim-state code.
#[doc(hidden)]
pub mod baseline {
    use crate::Cycles;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// The pre-overhaul future-event list: a `BinaryHeap` ordered by
    /// `(time, seq)`. Shares `EventQueue`'s delivery contract; used as the
    /// model in `tests/queue_model.rs` and the baseline in
    /// `benches/engine.rs`.
    #[derive(Clone, Debug)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        now: Cycles,
        seq: u64,
    }

    #[derive(Clone, Debug)]
    struct Entry<E> {
        time: Cycles,
        seq: u64,
        event: E,
    }

    // Min-heap by (time, seq): BinaryHeap is a max-heap, so invert.
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.time, other.seq).cmp(&(self.time, self.seq))
        }
    }

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Entry<E> {}

    impl<E> HeapQueue<E> {
        /// Creates an empty queue with the clock at zero.
        pub fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
                now: Cycles::ZERO,
                seq: 0,
            }
        }

        /// The timestamp of the last popped event.
        pub fn now(&self) -> Cycles {
            self.now
        }

        /// Schedules `event` at the absolute time `at`.
        ///
        /// # Panics
        ///
        /// Panics if `at` is before [`Self::now`].
        pub fn schedule_at(&mut self, at: Cycles, event: E) {
            assert!(at >= self.now, "scheduling into the past");
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry {
                time: at,
                seq,
                event,
            });
        }

        /// Removes and returns the earliest event.
        pub fn pop(&mut self) -> Option<(Cycles, E)> {
            let entry = self.heap.pop()?;
            self.now = entry.time;
            Some((entry.time, entry.event))
        }

        /// Timestamp of the next event without popping it.
        pub fn peek_time(&self) -> Option<Cycles> {
            self.heap.peek().map(|e| e.time)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// Whether no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Drops all pending events and resets the sequence counter,
        /// keeping the clock (mirrors `EventQueue::clear`).
        pub fn clear(&mut self) {
            self.heap.clear();
            self.seq = 0;
        }
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(30), 3);
        q.schedule_at(Cycles::new(10), 1);
        q.schedule_at(Cycles::new(20), 2);
        assert_eq!(q.pop(), Some((Cycles::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycles::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycles::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Cycles::new(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles::new(7), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop_only() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(50), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles::new(50));
    }

    #[test]
    fn relative_schedule_uses_now() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), 'a');
        q.pop();
        q.schedule(Cycles::new(5), 'b');
        assert_eq!(q.pop(), Some((Cycles::new(15), 'b')));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), ());
        q.pop();
        q.schedule_at(Cycles::new(5), ());
    }

    #[test]
    #[should_panic(expected = "overflows the cycle clock")]
    fn relative_schedule_overflow_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), ());
        q.pop();
        // now + delay wraps past u64::MAX: the old implementation parked
        // this at Cycles::MAX silently; it must fail loudly.
        q.schedule(Cycles::MAX, ());
    }

    #[test]
    fn relative_schedule_at_exact_horizon_is_fine() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), 'a');
        q.pop();
        // now + delay == u64::MAX exactly: representable, not an overflow.
        q.schedule(Cycles::new(u64::MAX - 10), 'b');
        assert_eq!(q.pop(), Some((Cycles::MAX, 'b')));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(9), ());
        assert_eq!(q.peek_time(), Some(Cycles::new(9)));
        assert_eq!(q.now(), Cycles::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_sees_through_every_storage_tier() {
        let mut q = EventQueue::new();
        // Overflow only.
        q.schedule_at(Cycles::new(1 << 40), 1);
        assert_eq!(q.peek_time(), Some(Cycles::new(1 << 40)));
        // An upper wheel level in front of it.
        q.schedule_at(Cycles::new(5_000), 2);
        assert_eq!(q.peek_time(), Some(Cycles::new(5_000)));
        // Level 0 in front of that.
        q.schedule_at(Cycles::new(3), 3);
        assert_eq!(q.peek_time(), Some(Cycles::new(3)));
        // A partially delivered ready chain still peeks correctly.
        q.schedule_at(Cycles::new(3), 4);
        assert_eq!(q.pop(), Some((Cycles::new(3), 3)));
        assert_eq!(q.peek_time(), Some(Cycles::new(3)));
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), ());
        q.pop();
        q.schedule(Cycles::new(100), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), Cycles::new(10));
    }

    #[test]
    fn clear_resets_tie_break_state() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(Cycles::new(5), i);
        }
        q.pop();
        q.clear();
        // Regression: `clear` used to leave the sequence counter at its
        // pre-clear value, so a reused queue's tie-break state (and its
        // overflow keys) depended on history. A cleared queue must look
        // exactly like a fresh one at the same clock.
        assert_eq!(q.scheduled_total(), 0);
        q.schedule_at(Cycles::new(7), 100);
        q.schedule_at(Cycles::new(7), 101);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.pop(), Some((Cycles::new(7), 100)));
        assert_eq!(q.pop(), Some((Cycles::new(7), 101)));
    }

    #[test]
    fn default_is_empty_fresh_queue() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.now(), Cycles::ZERO);
        assert_eq!(q.scheduled_total(), 0);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(1), 1u32);
        q.schedule_at(Cycles::new(100), 100);
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push(e);
            if e == 1 {
                // Schedule a follow-up between the two pending times.
                q.schedule_at(t + Cycles::new(10), 11);
            }
        }
        assert_eq!(seen, vec![1, 11, 100]);
    }

    #[test]
    fn far_future_events_cross_the_overflow_level() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::MAX, 'z');
        q.schedule_at(Cycles::new(1u64 << 50), 'y');
        q.schedule_at(Cycles::new(1u64 << 40), 'x');
        q.schedule_at(Cycles::new(7), 'a');
        assert_eq!(q.pop(), Some((Cycles::new(7), 'a')));
        assert_eq!(q.pop(), Some((Cycles::new(1u64 << 40), 'x')));
        // Scheduling relative to the advanced clock interleaves correctly
        // with the remaining overflow events.
        q.schedule(Cycles::new(3), 'b');
        assert_eq!(q.pop(), Some((Cycles::new((1u64 << 40) + 3), 'b')));
        assert_eq!(q.pop(), Some((Cycles::new(1u64 << 50), 'y')));
        assert_eq!(q.pop(), Some((Cycles::MAX, 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_burst_straddling_a_cascade_keeps_fifo() {
        let mut q = EventQueue::new();
        // A burst scheduled while far from its window (lands in an upper
        // level), then more of the same cycle scheduled after the wheel
        // has advanced next to it (lands in level 0). Seq order must hold
        // across the cascade boundary.
        for i in 0..5 {
            q.schedule_at(Cycles::new(10_000), i);
        }
        q.schedule_at(Cycles::new(9_990), 100);
        assert_eq!(q.pop(), Some((Cycles::new(9_990), 100)));
        for i in 5..10 {
            q.schedule_at(Cycles::new(10_000), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((Cycles::new(10_000), i)));
        }
    }

    #[test]
    fn steady_state_loop_recycles_pooled_nodes() {
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.schedule_at(Cycles::new(i), i);
        }
        let peak = q.pool_size();
        // A long schedule/pop steady state: every delivery recycles its
        // arena slot, so the pool never grows past the initial population.
        for i in 0..100_000u64 {
            let (t, _) = q.pop().expect("population is constant");
            q.schedule_at(t + Cycles::new(64), i);
        }
        assert_eq!(q.pool_size(), peak, "steady-state loop must not allocate");
        assert_eq!(q.len(), 64);
    }

    #[test]
    fn reserve_pre_sizes_the_pool() {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(100);
        q.reserve_events(500);
        let cap = q.nodes.capacity();
        assert!(cap >= 500);
        for i in 0..500 {
            q.schedule_at(Cycles::new(i), i);
        }
        assert_eq!(q.nodes.capacity(), cap, "reserved pool must not regrow");
    }

    #[test]
    fn empty_wheel_windows_are_skipped() {
        // Events separated by huge idle gaps: popping must not degrade
        // (this is the next-event skipping path; with per-bucket stepping
        // this test would take geological time).
        let mut q = EventQueue::new();
        let mut t = 0u64;
        for i in 0..1_000u64 {
            t += 1 << 35;
            q.schedule_at(Cycles::new(t), i);
        }
        let mut n = 0;
        while let Some((_, e)) = q.pop() {
            assert_eq!(e, n);
            n += 1;
        }
        assert_eq!(n, 1_000);
    }

    #[test]
    fn baseline_heap_matches_basic_contract() {
        let mut q = baseline::HeapQueue::new();
        q.schedule_at(Cycles::new(5), 'b');
        q.schedule_at(Cycles::new(5), 'c');
        q.schedule_at(Cycles::new(1), 'a');
        assert_eq!(q.peek_time(), Some(Cycles::new(1)));
        assert_eq!(q.pop(), Some((Cycles::new(1), 'a')));
        assert_eq!(q.pop(), Some((Cycles::new(5), 'b')));
        assert_eq!(q.pop(), Some((Cycles::new(5), 'c')));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped timestamps are always non-decreasing, regardless of the
        /// scheduling order.
        #[test]
        fn pop_order_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule_at(Cycles::new(t), t);
            }
            let mut last = Cycles::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Every scheduled event is delivered exactly once.
        #[test]
        fn conservation(times in proptest::collection::vec(0u64..10_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(Cycles::new(t), i);
            }
            let mut delivered: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            delivered.sort_unstable();
            prop_assert_eq!(delivered, (0..times.len()).collect::<Vec<_>>());
        }

        /// Same-time events preserve scheduling order (stability).
        #[test]
        fn stable_ties(n in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule_at(Cycles::new(42), i);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        }
    }
}
