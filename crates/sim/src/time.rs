//! Cycle counts and clock-frequency conversions.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A count of core clock cycles — the simulator's unit of time.
///
/// `Cycles` is a transparent newtype over `u64` with checked-by-construction
/// semantics: additions saturate (a saturated simulation time is an
/// out-of-horizon event, never wraparound), subtractions panic on underflow
/// in debug and saturate in release via [`Cycles::saturating_sub`].
///
/// Wall-clock conversion requires a [`Frequency`], because the paper's three
/// machines run at different clocks (2 GHz manycores, 3 GHz ServerClass).
///
/// # Examples
///
/// ```
/// use um_sim::{Cycles, Frequency};
///
/// let f = Frequency::ghz(2.0);
/// let t = Cycles::from_micros(1.5, f);
/// assert_eq!(t, Cycles::new(3_000));
/// assert!((t.as_micros(f) - 1.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// The maximum representable time; used as an "infinitely far" horizon.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts a microsecond duration at `freq` into cycles (rounded).
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or NaN.
    pub fn from_micros(micros: f64, freq: Frequency) -> Self {
        assert!(micros >= 0.0, "negative duration {micros} us");
        Cycles((micros * freq.cycles_per_micro()).round() as u64)
    }

    /// Converts a nanosecond duration at `freq` into cycles (rounded).
    ///
    /// # Panics
    ///
    /// Panics if `nanos` is negative or NaN.
    pub fn from_nanos(nanos: f64, freq: Frequency) -> Self {
        Self::from_micros(nanos / 1_000.0, freq)
    }

    /// This duration in microseconds at `freq`.
    pub fn as_micros(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.cycles_per_micro()
    }

    /// This duration in milliseconds at `freq`.
    pub fn as_millis(self, freq: Frequency) -> f64 {
        self.as_micros(freq) / 1_000.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Checked addition: `None` on overflow. Use where a wrapped-to-`MAX`
    /// time must fail loudly instead of parking an event at the horizon
    /// (e.g. [`crate::EventQueue::schedule`]).
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two times.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The smaller of two times.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Scales by a non-negative float, rounding to the nearest cycle.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> Cycles {
        assert!(factor >= 0.0, "negative scale factor {factor}");
        Cycles((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics on underflow: event timestamps are monotone, so subtracting a
    /// later time from an earlier one is always a simulator bug.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(
            self.0
                .checked_sub(rhs.0)
                .expect("cycle subtraction underflow: non-monotone timestamps"),
        )
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

/// A clock frequency, used to convert between cycles and wall time.
///
/// # Examples
///
/// ```
/// use um_sim::Frequency;
///
/// let f = Frequency::ghz(3.0);
/// assert_eq!(f.cycles_per_micro(), 3_000.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Frequency {
    ghz: f64,
}

impl Frequency {
    /// Creates a frequency from GHz.
    ///
    /// # Panics
    ///
    /// Panics unless `ghz` is finite and positive.
    pub fn ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "invalid frequency {ghz} GHz");
        Frequency { ghz }
    }

    /// The frequency in GHz.
    pub fn as_ghz(self) -> f64 {
        self.ghz
    }

    /// Cycles in one microsecond at this frequency.
    pub fn cycles_per_micro(self) -> f64 {
        self.ghz * 1_000.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}GHz", self.ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_round_trip() {
        let f = Frequency::ghz(2.0);
        for us in [0.0, 0.5, 1.0, 123.456] {
            let c = Cycles::from_micros(us, f);
            assert!((c.as_micros(f) - us).abs() < 1e-3, "us={us} c={c}");
        }
    }

    #[test]
    fn arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!(a + b, Cycles::new(13));
        assert_eq!(a - b, Cycles::new(7));
        assert_eq!(a * 3, Cycles::new(30));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!([a, b].into_iter().sum::<Cycles>(), Cycles::new(13));
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(Cycles::MAX + Cycles::new(1), Cycles::MAX);
        assert_eq!(Cycles::MAX * 2, Cycles::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Cycles::new(1) - Cycles::new(2);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Cycles::new(1).saturating_sub(Cycles::new(5)), Cycles::ZERO);
        assert_eq!(Cycles::MAX.saturating_add(Cycles::new(1)), Cycles::MAX);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(
            Cycles::new(1).checked_add(Cycles::new(2)),
            Some(Cycles::new(3))
        );
        assert_eq!(
            Cycles::new(1).checked_add(Cycles::new(u64::MAX - 1)),
            Some(Cycles::MAX)
        );
        assert_eq!(Cycles::MAX.checked_add(Cycles::new(1)), None);
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Cycles::new(10).scale(1.26), Cycles::new(13));
        assert_eq!(Cycles::new(10).scale(0.0), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn scale_rejects_negative() {
        let _ = Cycles::new(1).scale(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn zero_frequency_rejected() {
        let _ = Frequency::ghz(0.0);
    }

    #[test]
    fn nanos_conversion() {
        let f = Frequency::ghz(2.0);
        assert_eq!(Cycles::from_nanos(500.0, f), Cycles::new(1_000));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycles::new(5).to_string(), "5cyc");
        assert_eq!(Frequency::ghz(2.0).to_string(), "2.0GHz");
    }
}
