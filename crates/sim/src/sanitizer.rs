//! Opt-in runtime simulation sanitizer (the `sim-sanitizer` feature).
//!
//! The static pass (`um-tidy`) keeps nondeterminism out of the source;
//! this module catches *model corruption* at runtime: out-of-order events,
//! leaked MSHR entries, run-queue occupancy drift, requests that vanish
//! without completing. Each checker reports a structured [`Violation`]
//! into a thread-local registry instead of silently producing a wrong
//! number; the system simulator drains the registry at report time and
//! panics if anything accumulated ([`assert_clean`]).
//!
//! The registry is thread-local on purpose: every simulation runs on one
//! thread (the sweep runner hands whole configurations to workers), so a
//! violation is always observed by the run that caused it, and parallel
//! test binaries cannot cross-contaminate.
//!
//! With the feature disabled this module is not compiled and every checker
//! call site is `#[cfg]`-ed out — zero overhead, bit-identical behaviour.
//!
//! # Examples
//!
//! ```
//! use um_sim::sanitizer;
//!
//! sanitizer::report("example-checker", "manual violation".to_string());
//! let violations = sanitizer::take();
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].checker, "example-checker");
//! assert_eq!(sanitizer::violation_count(), 0); // take() drains
//! ```

use std::cell::RefCell;
use std::fmt;

/// One invariant violation observed by a runtime checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which checker fired (e.g. `event-monotonicity`, `mshr-leak`).
    pub checker: &'static str,
    /// What went wrong, with the values involved.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.checker, self.message)
    }
}

thread_local! {
    static VIOLATIONS: RefCell<Vec<Violation>> = const { RefCell::new(Vec::new()) };
}

/// Records a violation in this thread's registry.
pub fn report(checker: &'static str, message: String) {
    VIOLATIONS.with(|v| v.borrow_mut().push(Violation { checker, message }));
}

/// Number of violations recorded on this thread since the last [`take`].
pub fn violation_count() -> usize {
    VIOLATIONS.with(|v| v.borrow().len())
}

/// Drains and returns this thread's recorded violations.
pub fn take() -> Vec<Violation> {
    VIOLATIONS.with(|v| std::mem::take(&mut *v.borrow_mut()))
}

/// Drains the registry and panics with a formatted list if any checker
/// fired. `context` names the run being checked (seed, config, …).
///
/// # Panics
///
/// Panics when at least one violation was recorded on this thread.
pub fn assert_clean(context: &str) {
    let violations = take();
    if !violations.is_empty() {
        let mut msg = format!(
            "sim-sanitizer: {} violation(s) in {context}:\n",
            violations.len()
        );
        for v in &violations {
            msg.push_str("  ");
            msg.push_str(&v.to_string());
            msg.push('\n');
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_take_roundtrip() {
        assert_eq!(violation_count(), 0);
        report("test-checker", "a".into());
        report("test-checker", "b".into());
        assert_eq!(violation_count(), 2);
        let got = take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].message, "a");
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn assert_clean_passes_when_empty() {
        let _ = take();
        assert_clean("empty registry");
    }

    #[test]
    #[should_panic(expected = "sim-sanitizer: 1 violation(s) in demo run")]
    fn assert_clean_panics_with_context() {
        report("demo-checker", "injected".into());
        assert_clean("demo run");
    }

    #[test]
    fn registries_are_thread_local() {
        let _ = take();
        report("local", "stays here".into());
        let other = std::thread::spawn(violation_count)
            .join()
            .expect("probe thread");
        assert_eq!(other, 0, "fresh thread sees an empty registry");
        assert_eq!(take().len(), 1);
    }
}
