//! Reproducible per-component random streams.
//!
//! Every stochastic component of the simulator (arrival processes, service
//! time draws, routing tie-breaks, …) pulls from its own named stream derived
//! from a single master seed. Streams are independent of each other and of
//! the order in which components are constructed, so adding a new component
//! never perturbs existing results.
//!
//! # Examples
//!
//! ```
//! use um_sim::rng;
//! use rand::Rng;
//!
//! let mut a = rng::stream(42, "arrivals");
//! let mut b = rng::stream(42, "arrivals");
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // same seed+tag => same stream
//!
//! let mut c = rng::stream(42, "service");
//! let _ = c.gen::<u64>(); // different tag => independent stream
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives a deterministic [`SmallRng`] for component `tag` from `seed`.
///
/// The derivation hashes the tag with FNV-1a and mixes it with the master
/// seed through SplitMix64 finalization, giving well-separated streams for
/// distinct tags.
pub fn stream(seed: u64, tag: &str) -> SmallRng {
    SmallRng::seed_from_u64(mix(seed, fnv1a(tag.as_bytes())))
}

/// Derives a stream for an indexed component, e.g. one stream per core.
pub fn stream_indexed(seed: u64, tag: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix(mix(seed, fnv1a(tag.as_bytes())), index))
}

/// Derives a child master seed for sub-experiment `index` of a sweep.
///
/// Sweep drivers use this to give every point of a parameter sweep its
/// own independent seed, derived purely from the sweep's master seed and
/// the point's position. Because the derivation is a function of
/// `(seed, index)` alone — never of execution order — a sweep evaluated
/// across worker threads produces bit-identical results to a serial run.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    mix(mix(seed, fnv1a(b"sweep-point")), index)
}

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: mixes two words into a well-distributed seed.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = (a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_tag_same_stream() {
        let mut a = stream(1, "x");
        let mut b = stream(1, "x");
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_tags_differ() {
        let mut a = stream(1, "x");
        let mut b = stream(1, "y");
        let av: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream(1, "x");
        let mut b = stream(2, "x");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let mut r = stream_indexed(7, "core", i);
            assert!(seen.insert(r.gen::<u64>()), "collision at index {i}");
        }
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1_000 {
            assert!(seen.insert(derive_seed(42, i)), "collision at index {i}");
        }
        // Stable across calls (pure function of its inputs).
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }

    #[test]
    fn fnv_distinguishes_prefixes() {
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn mix_is_not_identity() {
        assert_ne!(mix(0, 0), 0);
        assert_ne!(mix(1, 0), mix(0, 1));
    }
}
