//! Differential test: the calendar-queue `EventQueue` against the
//! reference `BinaryHeap` model it replaced.
//!
//! The queue's `(time, seq)` FIFO delivery contract is load-bearing for
//! every determinism test and committed result in the repo, so the two
//! implementations are driven through arbitrary interleaved
//! schedule/pop/clear sequences — same-cycle FIFO bursts, short hops,
//! wheel-level jumps, and far-future overflow-level times included — and
//! must produce identical `(time, seq, event)` streams at every step.

use proptest::prelude::*;
use um_sim::baseline::HeapQueue;
use um_sim::{Cycles, EventQueue};

/// One scripted operation applied to both queues.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule one event `delta` cycles after the current clock.
    Schedule(u64),
    /// Schedule `n` events at the same cycle (`delta` out) to exercise
    /// FIFO tie-breaking.
    Burst(u64, u8),
    /// Pop one event and compare the delivery.
    Pop,
    /// Drop all pending events (and, post-fix, the tie-break counter).
    Clear,
}

/// Deltas spanning every storage tier of the calendar queue: the current
/// level-0 window, mid-wheel levels, the wheel horizon boundary, and the
/// sorted overflow level (beyond 2^36 cycles), up to `u64::MAX`.
fn delta_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        0u64..64,
        0u64..4_096,
        0u64..4_096,
        0u64..(1u64 << 18),
        0u64..(1u64 << 37),
        (1u64 << 36) - 64..(1u64 << 36) + 64,
        // The top 1024 times, u64::MAX itself included (the vendored
        // proptest has no inclusive ranges; shift an exclusive one up).
        (u64::MAX - 1_024..u64::MAX).prop_map(|d| d + 1),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Repeated arms stand in for weights: schedules and pops dominate so
    // sequences drain and refill the queue instead of only growing it.
    prop_oneof![
        delta_strategy().prop_map(Op::Schedule),
        delta_strategy().prop_map(Op::Schedule),
        delta_strategy().prop_map(Op::Schedule),
        // No tuple strategies in the vendored proptest: derive the burst
        // length from a hash of the delta so the two vary independently.
        delta_strategy()
            .prop_map(|d| Op::Burst(d, 1 + (d.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as u8)),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        ..ProptestConfig::default()
    })]

    /// The calendar queue and the reference heap deliver identical
    /// `(time, event)` streams (with `event` carrying the schedule index,
    /// so seq-order divergence is visible) under arbitrary interleaved
    /// schedule/pop/clear sequences.
    #[test]
    fn calendar_queue_matches_heap_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut next_id = 0u64;
        for op in &ops {
            match *op {
                Op::Schedule(delta) => {
                    // Both clocks advance identically, so the absolute
                    // time is shared. Saturate instead of overflowing:
                    // schedule-past-MAX is the loud-panic path, tested
                    // separately.
                    let at = Cycles::new(calendar.now().raw().saturating_add(delta));
                    calendar.schedule_at(at, next_id);
                    heap.schedule_at(at, next_id);
                    next_id += 1;
                }
                Op::Burst(delta, n) => {
                    let at = Cycles::new(calendar.now().raw().saturating_add(delta));
                    for _ in 0..n {
                        calendar.schedule_at(at, next_id);
                        heap.schedule_at(at, next_id);
                        next_id += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(calendar.peek_time(), heap.peek_time());
                    prop_assert_eq!(calendar.pop(), heap.pop());
                    prop_assert_eq!(calendar.now(), heap.now());
                }
                Op::Clear => {
                    calendar.clear();
                    heap.clear();
                }
            }
            prop_assert_eq!(calendar.len(), heap.len());
            prop_assert_eq!(calendar.is_empty(), heap.is_empty());
        }
        // Drain both completely: every pending event must come out in the
        // same order.
        loop {
            prop_assert_eq!(calendar.peek_time(), heap.peek_time());
            let (a, b) = (calendar.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
