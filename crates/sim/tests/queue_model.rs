//! Differential test: the calendar-queue `EventQueue` against the
//! reference `BinaryHeap` model it replaced.
//!
//! The queue's `(time, seq)` FIFO delivery contract is load-bearing for
//! every determinism test and committed result in the repo, so the two
//! implementations are driven through arbitrary interleaved
//! schedule/pop/clear sequences — same-cycle FIFO bursts, short hops,
//! wheel-level jumps, and far-future overflow-level times included — and
//! must produce identical `(time, seq, event)` streams at every step.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use um_sim::baseline::HeapQueue;
use um_sim::{Cycles, EventQueue};

/// One scripted operation applied to both queues.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule one event `delta` cycles after the current clock.
    Schedule(u64),
    /// Schedule `n` events at the same cycle (`delta` out) to exercise
    /// FIFO tie-breaking.
    Burst(u64, u8),
    /// Pop one event and compare the delivery.
    Pop,
    /// Drop all pending events (and, post-fix, the tie-break counter).
    Clear,
}

/// Deltas spanning every storage tier of the calendar queue: the current
/// level-0 window, mid-wheel levels, the wheel horizon boundary, and the
/// sorted overflow level (beyond 2^36 cycles), up to `u64::MAX`.
fn delta_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        0u64..64,
        0u64..4_096,
        0u64..4_096,
        0u64..(1u64 << 18),
        0u64..(1u64 << 37),
        (1u64 << 36) - 64..(1u64 << 36) + 64,
        // The top 1024 times, u64::MAX itself included (the vendored
        // proptest has no inclusive ranges; shift an exclusive one up).
        (u64::MAX - 1_024..u64::MAX).prop_map(|d| d + 1),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Repeated arms stand in for weights: schedules and pops dominate so
    // sequences drain and refill the queue instead of only growing it.
    prop_oneof![
        delta_strategy().prop_map(Op::Schedule),
        delta_strategy().prop_map(Op::Schedule),
        delta_strategy().prop_map(Op::Schedule),
        // No tuple strategies in the vendored proptest: derive the burst
        // length from a hash of the delta so the two vary independently.
        delta_strategy()
            .prop_map(|d| Op::Burst(d, 1 + (d.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as u8)),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        ..ProptestConfig::default()
    })]

    /// The calendar queue and the reference heap deliver identical
    /// `(time, event)` streams (with `event` carrying the schedule index,
    /// so seq-order divergence is visible) under arbitrary interleaved
    /// schedule/pop/clear sequences.
    #[test]
    fn calendar_queue_matches_heap_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut next_id = 0u64;
        for op in &ops {
            match *op {
                Op::Schedule(delta) => {
                    // Both clocks advance identically, so the absolute
                    // time is shared. Saturate instead of overflowing:
                    // schedule-past-MAX is the loud-panic path, tested
                    // separately.
                    let at = Cycles::new(calendar.now().raw().saturating_add(delta));
                    calendar.schedule_at(at, next_id);
                    heap.schedule_at(at, next_id);
                    next_id += 1;
                }
                Op::Burst(delta, n) => {
                    let at = Cycles::new(calendar.now().raw().saturating_add(delta));
                    for _ in 0..n {
                        calendar.schedule_at(at, next_id);
                        heap.schedule_at(at, next_id);
                        next_id += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(calendar.peek_time(), heap.peek_time());
                    prop_assert_eq!(calendar.pop(), heap.pop());
                    prop_assert_eq!(calendar.now(), heap.now());
                }
                Op::Clear => {
                    calendar.clear();
                    heap.clear();
                }
            }
            prop_assert_eq!(calendar.len(), heap.len());
            prop_assert_eq!(calendar.is_empty(), heap.is_empty());
        }
        // Drain both completely: every pending event must come out in the
        // same order.
        loop {
            prop_assert_eq!(calendar.peek_time(), heap.peek_time());
            let (a, b) = (calendar.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

/// One seeded delta spanning the calendar's storage tiers, with the
/// band around the 36-bit wheel horizon heavily represented so the
/// wheel/overflow boundary is crossed in both directions.
fn stress_delta(rng: &mut SmallRng) -> u64 {
    match rng.gen_range(0..8) {
        0 | 1 => rng.gen_range(0..64),
        2 | 3 => rng.gen_range(0..1u64 << 18),
        4 => rng.gen_range(0..1u64 << 30),
        // Straddle the wheel horizon: half a window below to half above.
        5 | 6 => (1u64 << 36) - 4_096 + rng.gen_range(0..8_192),
        _ => rng.gen_range(1u64 << 36..1u64 << 40),
    }
}

/// Cluster-scale differential: the 64-node rack experiments hold on the
/// order of a million live events, far beyond what the proptest above
/// reaches. Build a ~2^20-event population whose times straddle the
/// 2^36 wheel horizon, churn it through a pop/schedule cycle that walks
/// the wheel base across the horizon (cascading the sorted overflow
/// level back into the wheel), then drain — the calendar must match the
/// reference heap at every delivery.
#[test]
fn cluster_scale_population_straddles_the_wheel_horizon() {
    const LIVE: usize = 1 << 20;
    const CHURN: usize = 200_000;
    let mut rng = SmallRng::seed_from_u64(0x36);
    let mut calendar: EventQueue<u64> = EventQueue::with_capacity(LIVE + CHURN);
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut next_id = 0u64;
    for _ in 0..LIVE {
        let at = Cycles::new(calendar.now().raw().saturating_add(stress_delta(&mut rng)));
        calendar.schedule_at(at, next_id);
        heap.schedule_at(at, next_id);
        next_id += 1;
    }
    assert_eq!(calendar.len(), LIVE);
    // Churn at full population: every pop advances the shared clock, so
    // later schedules land relative to a base that crosses the horizon.
    for _ in 0..CHURN {
        assert_eq!(calendar.peek_time(), heap.peek_time());
        let (a, b) = (calendar.pop(), heap.pop());
        assert_eq!(a, b);
        let at = Cycles::new(calendar.now().raw().saturating_add(stress_delta(&mut rng)));
        calendar.schedule_at(at, next_id);
        heap.schedule_at(at, next_id);
        next_id += 1;
    }
    assert_eq!(calendar.len(), LIVE);
    loop {
        assert_eq!(calendar.peek_time(), heap.peek_time());
        let (a, b) = (calendar.pop(), heap.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    // The drain carried the wheel base across the 2^36 horizon (the
    // overflow tiers guarantee events out there), so the overflow level
    // cascaded back into the wheel along the way.
    assert!(
        calendar.now().raw() > 1 << 36,
        "the drain walked the clock past the wheel horizon: now={}",
        calendar.now()
    );
}

/// The underflow list (events injected behind the wheel base, reachable
/// only through the sanitizer-facing `schedule_at_unchecked`) under a
/// cluster-scale live population: injected causality breaks must drain
/// first, in `(time, seq)` order, before any of the million in-order
/// events — exactly the heap-minimal order the `BinaryHeap`
/// implementation gave them. The reference here is a sorted-vector
/// model, since `HeapQueue` has no unchecked schedule path.
#[cfg(feature = "sim-sanitizer")]
#[test]
fn underflow_list_drains_first_under_cluster_scale_population() {
    const LIVE: usize = 1 << 20;
    const BREAKS: usize = 4_096;
    let mut rng = SmallRng::seed_from_u64(0x1197);
    let mut q: EventQueue<u64> = EventQueue::with_capacity(LIVE + BREAKS);
    // March the clock past the wheel horizon so there is a deep "past"
    // for the injected breaks to land in.
    q.schedule_at(Cycles::new((1 << 36) + 12_345), u64::MAX);
    assert_eq!(q.pop(), Some((Cycles::new((1 << 36) + 12_345), u64::MAX)));
    let base = q.now().raw();
    let mut next_id = 0u64;
    // The in-order population: wheel and overflow tiers ahead of now.
    let mut future: Vec<(u64, u64)> = Vec::with_capacity(LIVE);
    for _ in 0..LIVE {
        let at = base + stress_delta(&mut rng);
        q.schedule_at(Cycles::new(at), next_id);
        future.push((at, next_id));
        next_id += 1;
    }
    // The causality breaks: behind the base, duplicates included so the
    // FIFO tie-break is exercised inside the underflow list too.
    let mut breaks: Vec<(u64, u64)> = Vec::with_capacity(BREAKS);
    for _ in 0..BREAKS {
        let at = rng.gen_range(0..base);
        let at = if at % 7 == 0 { base - 1 } else { at };
        q.schedule_at_unchecked(Cycles::new(at), next_id);
        breaks.push((at, next_id));
        next_id += 1;
    }
    assert_eq!(q.len(), LIVE + BREAKS);
    // Expected delivery: all breaks first (they are globally earliest),
    // then the futures; stable sort by time preserves seq FIFO order.
    breaks.sort_by_key(|&(t, _)| t);
    future.sort_by_key(|&(t, _)| t);
    for &(t, id) in breaks.iter().chain(&future) {
        assert_eq!(q.peek_time(), Some(Cycles::new(t)));
        assert_eq!(q.pop(), Some((Cycles::new(t), id)));
    }
    assert_eq!(q.pop(), None);
    assert!(q.is_empty());
}
