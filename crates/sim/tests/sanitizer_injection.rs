//! Deliberate-violation tests for the `sim-sanitizer` event-queue checker:
//! an injected causality break must surface as a structured violation, and
//! well-formed schedules must leave the registry empty.
#![cfg(feature = "sim-sanitizer")]

use um_sim::{sanitizer, Cycles, EventQueue};

#[test]
fn out_of_order_event_is_reported() {
    let _ = sanitizer::take();
    let mut q = EventQueue::new();
    q.schedule_at(Cycles::new(100), "late");
    assert_eq!(q.pop(), Some((Cycles::new(100), "late")));
    // Bypass the causality assertion to plant an event behind the clock.
    q.schedule_at_unchecked(Cycles::new(5), "past");
    q.pop();
    let violations = sanitizer::take();
    assert_eq!(violations.len(), 1, "exactly one violation: {violations:?}");
    assert_eq!(violations[0].checker, "event-monotonicity");
    assert!(
        violations[0].message.contains("time 5") && violations[0].message.contains("clock 100"),
        "message names the times involved: {}",
        violations[0].message
    );
}

#[test]
fn relative_schedule_overflow_is_reported() {
    let _ = sanitizer::take();
    let mut q = EventQueue::new();
    q.schedule_at(Cycles::new(100), "tick");
    q.pop();
    // The overflowing delay must panic *and* leave a structured violation
    // behind, mirroring the schedule-into-the-past assertion.
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        q.schedule(Cycles::MAX, "beyond-the-horizon");
    }));
    assert!(panicked.is_err(), "overflowing delay must panic");
    let violations = sanitizer::take();
    assert_eq!(violations.len(), 1, "exactly one violation: {violations:?}");
    assert_eq!(violations[0].checker, "schedule-overflow");
    assert!(
        violations[0].message.contains("now=100cyc"),
        "message names the clock: {}",
        violations[0].message
    );
}

#[test]
fn well_ordered_schedules_stay_clean() {
    let _ = sanitizer::take();
    let mut q = EventQueue::new();
    for i in (0..100u64).rev() {
        q.schedule_at(Cycles::new(i), i);
    }
    while q.pop().is_some() {}
    assert_eq!(sanitizer::violation_count(), 0);
}
