//! Contention-aware message transport over a topology.
//!
//! The on-package network is lossless with back-pressure (§4.1): a message
//! waits for each link to free rather than being dropped, so contention
//! appears purely as queueing delay. `Network` models each directed link as
//! a resource that serializes messages (`bytes / width` cycles of occupancy)
//! and charges the paper's 5-cycle per-hop router+wire latency (Table 2).

use crate::topology::{LinkId, Topology};
use rand::rngs::SmallRng;
use rand::Rng;
use um_sim::fault::FaultWindow;
use um_sim::{rng, Cycles};

/// How redundant paths are chosen at ECMP branch points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RouteStrategy {
    /// Always take the first alternative (degenerates the leaf-spine to a
    /// single-path tree; useful as an ablation).
    Deterministic,
    /// Uniform random choice — classic ECMP hashing.
    RandomEcmp,
    /// Pick the candidate whose first link frees earliest — an idealized
    /// adaptive router. This is the uManycore default.
    #[default]
    LeastLoaded,
}

/// Timing parameters of a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Per-hop latency: Table 2 gives 5 cycles (4 router + 1 wire).
    pub hop_latency: Cycles,
    /// Bytes a base-width link moves per cycle.
    pub bytes_per_cycle: f64,
    /// Whether links serialize messages; `false` gives the contention-free
    /// network used as Figure 7's normalization baseline.
    pub contention: bool,
    /// Path-selection strategy at ECMP branch points.
    pub strategy: RouteStrategy,
    /// Seed for the strategy's random stream.
    pub seed: u64,
}

impl NetworkConfig {
    /// The paper's on-package network: 5 cycles/hop (4 router + 1 wire,
    /// Table 2), 8 B/cycle links (chiplet-to-chiplet SERDES-class
    /// bandwidth — the clusters, pools and hubs are separate chiplets),
    /// contention on, least-loaded adaptive routing.
    pub fn on_package() -> Self {
        Self {
            hop_latency: Cycles::new(5),
            bytes_per_cycle: 8.0,
            contention: true,
            strategy: RouteStrategy::LeastLoaded,
            seed: 0x1c4,
        }
    }

    /// Same timing with contention modelling disabled.
    pub fn contention_free() -> Self {
        Self {
            contention: false,
            ..Self::on_package()
        }
    }
}

/// Aggregate transport statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages delivered.
    pub messages: u64,
    /// Total cycles spent queueing for busy links (contention delay).
    pub queue_cycles: u64,
    /// Largest single-message queueing delay seen.
    pub max_queue_cycles: u64,
    /// Total hops traversed.
    pub hops: u64,
}

impl NetworkStats {
    /// Mean queueing delay per message, in cycles.
    pub fn mean_queue(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.queue_cycles as f64 / self.messages as f64
        }
    }
}

/// Full per-message transport attribution from [`Network::send_full`]:
/// splits the message's latency into serialization, contention queueing
/// and per-hop propagation, so callers can charge each to the right
/// latency-breakdown component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SendTrace {
    /// When the message arrives at the destination.
    pub arrival: Cycles,
    /// Cycles spent waiting for busy links (contention).
    pub queued: Cycles,
    /// Cycles spent serializing onto links (sum over hops).
    pub serialization: Cycles,
    /// Links traversed (0 for a self-send).
    pub hops: usize,
}

impl SendTrace {
    /// Propagation share of the latency given the per-hop cost:
    /// `hops * hop_latency` (one hop for a self-send).
    pub fn propagation(&self, hop_latency: Cycles) -> Cycles {
        if self.hops == 0 {
            hop_latency
        } else {
            hop_latency * self.hops as u64
        }
    }
}

/// A topology plus per-link occupancy state: the deliverable-message ICN.
///
/// # Examples
///
/// ```
/// use um_net::{Mesh2D, Network, NetworkConfig};
/// use um_sim::Cycles;
///
/// let mut net = Network::new(Mesh2D::new(4, 4), NetworkConfig::on_package());
/// let t1 = net.send(0, 15, 64, Cycles::ZERO);
/// let t2 = net.send(0, 15, 64, Cycles::ZERO); // same path: queues behind t1
/// assert!(t2 > t1);
/// ```
#[derive(Clone, Debug)]
pub struct Network<T> {
    topo: T,
    config: NetworkConfig,
    busy_until: Vec<Cycles>,
    /// Per-link fault windows (empty outer vec until the first injection).
    faults: Vec<Vec<FaultWindow>>,
    rng: SmallRng,
    stats: NetworkStats,
}

impl<T: Topology> Network<T> {
    /// Wraps `topo` with timing/contention state.
    pub fn new(topo: T, config: NetworkConfig) -> Self {
        let links = topo.num_links();
        Self {
            topo,
            config,
            busy_until: vec![Cycles::ZERO; links],
            faults: Vec::new(),
            rng: rng::stream(config.seed, "network-ecmp"),
            stats: NetworkStats::default(),
        }
    }

    /// Number of directed links (fault injection targets).
    pub fn num_links(&self) -> usize {
        self.busy_until.len()
    }

    /// Registers a fault window on `link` (applied modulo the link count).
    ///
    /// While a degradation window is active, serialization on the link is
    /// stretched by `window.slowdown`; an outage window delays any message
    /// reaching the link until the window closes. Either way the extra
    /// delay is reported in [`SendTrace::queued`], preserving the
    /// telescoping share invariant of [`Self::send_full`].
    pub fn inject_link_fault(&mut self, link: usize, window: FaultWindow) {
        let n = self.busy_until.len();
        if n == 0 {
            return;
        }
        if self.faults.is_empty() {
            self.faults = vec![Vec::new(); n];
        }
        self.faults[link % n].push(window);
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The timing configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Clears link occupancy and statistics.
    pub fn reset(&mut self) {
        self.busy_until.fill(Cycles::ZERO);
        self.stats = NetworkStats::default();
    }

    /// Sends `bytes` from endpoint `src` to endpoint `dst`, departing at
    /// `depart`; returns the arrival time at `dst`.
    ///
    /// A self-send (`src == dst`) is delivered after one hop latency,
    /// modelling the local hub traversal.
    pub fn send(&mut self, src: usize, dst: usize, bytes: u64, depart: Cycles) -> Cycles {
        self.send_traced(src, dst, bytes, depart).0
    }

    /// Like [`Self::send`], but also returns the total queueing (link
    /// contention) delay the message experienced — the part of its latency
    /// beyond an uncontended traversal.
    pub fn send_traced(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        depart: Cycles,
    ) -> (Cycles, Cycles) {
        let trace = self.send_full(src, dst, bytes, depart);
        (trace.arrival, trace.queued)
    }

    /// Like [`Self::send`], returning the message's full latency
    /// attribution. The shares are exhaustive:
    /// `arrival == depart + serialization + queued + propagation`.
    pub fn send_full(&mut self, src: usize, dst: usize, bytes: u64, depart: Cycles) -> SendTrace {
        let route = self.build_route(src, dst, depart);
        self.stats.messages += 1;
        if route.is_empty() {
            return SendTrace {
                arrival: depart + self.config.hop_latency,
                queued: Cycles::ZERO,
                serialization: Cycles::ZERO,
                hops: 0,
            };
        }
        let mut t = depart;
        let mut queued = Cycles::ZERO;
        let mut ser_total = Cycles::ZERO;
        for &link in &route {
            let ser = self.serialization(bytes, link);
            ser_total += ser;
            if self.config.contention {
                let free = self.busy_until[link];
                let (start, occupancy) = self.fault_adjusted(link, t.max(free), ser);
                queued += (start - t) + (occupancy - ser);
                self.busy_until[link] = start + occupancy;
                t = start + occupancy + self.config.hop_latency;
            } else {
                let (start, occupancy) = self.fault_adjusted(link, t, ser);
                queued += (start - t) + (occupancy - ser);
                t = start + occupancy + self.config.hop_latency;
            }
        }
        self.stats.queue_cycles += queued.raw();
        self.stats.max_queue_cycles = self.stats.max_queue_cycles.max(queued.raw());
        self.stats.hops += route.len() as u64;
        SendTrace {
            arrival: t,
            queued,
            serialization: ser_total,
            hops: route.len(),
        }
    }

    /// Latency of an uncontended transfer (for QoS baselines): same path
    /// length, no queueing, no link-state mutation.
    pub fn ideal_latency(&self, src: usize, dst: usize, bytes: u64) -> Cycles {
        let mut first = crate::topology::first_choice;
        let route = self.topo.route(src, dst, &mut first);
        if route.is_empty() {
            return self.config.hop_latency;
        }
        let mut t = Cycles::ZERO;
        for &link in &route {
            t = t + self.serialization(bytes, link) + self.config.hop_latency;
        }
        t
    }

    /// Applies `link`'s fault windows to a transfer that would start
    /// serializing at `start` and occupy the link for `ser` cycles:
    /// outage windows push the start past their end; the worst active
    /// degradation stretches the occupancy.
    fn fault_adjusted(&self, link: LinkId, mut start: Cycles, ser: Cycles) -> (Cycles, Cycles) {
        let Some(windows) = self.faults.get(link).filter(|w| !w.is_empty()) else {
            return (start, ser);
        };
        // `start` only moves forward and each outage window can fire at
        // most once, so this settles within `windows.len()` passes.
        loop {
            let mut moved = false;
            for w in windows {
                if w.is_outage() && w.contains(start) {
                    start = w.until;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        let mut slow = 1.0f64;
        for w in windows {
            if !w.is_outage() && w.contains(start) {
                slow = slow.max(w.slowdown);
            }
        }
        let occupancy = if slow > 1.0 { ser.scale(slow) } else { ser };
        (start, occupancy)
    }

    fn serialization(&self, bytes: u64, link: LinkId) -> Cycles {
        let width = self.topo.link_width(link).max(f64::EPSILON);
        Cycles::new(((bytes as f64 / (self.config.bytes_per_cycle * width)).ceil() as u64).max(1))
    }

    fn build_route(&mut self, src: usize, dst: usize, now: Cycles) -> Vec<LinkId> {
        let strategy = self.config.strategy;
        // Split borrows: chooser needs rng and busy_until, route needs topo.
        let busy = &self.busy_until;
        let rng = &mut self.rng;
        let mut choose = |candidates: &[LinkId]| -> usize {
            match strategy {
                RouteStrategy::Deterministic => 0,
                RouteStrategy::RandomEcmp => rng.gen_range(0..candidates.len()),
                RouteStrategy::LeastLoaded => candidates
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &l)| busy[l].max(now))
                    .map(|(i, _)| i)
                    .expect("candidates nonempty"),
            }
        };
        self.topo.route(src, dst, &mut choose)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FatTree, LeafSpine, Mesh2D};

    #[test]
    fn uncontended_latency_is_hops_times_cost() {
        let mut net = Network::new(Mesh2D::new(4, 1), NetworkConfig::on_package());
        // 3 hops, 64B at 8B/cycle = 8 cycles serialization per hop + 5 hop.
        let arrive = net.send(0, 3, 64, Cycles::ZERO);
        assert_eq!(arrive, Cycles::new(3 * (8 + 5)));
    }

    #[test]
    fn contention_free_mode_ignores_occupancy() {
        let mut net = Network::new(Mesh2D::new(4, 1), NetworkConfig::contention_free());
        let a = net.send(0, 3, 4096, Cycles::ZERO);
        let b = net.send(0, 3, 4096, Cycles::ZERO);
        assert_eq!(a, b);
        assert_eq!(net.stats().queue_cycles, 0);
    }

    #[test]
    fn queueing_accumulates_on_shared_path() {
        let mut net = Network::new(Mesh2D::new(2, 1), NetworkConfig::on_package());
        let mut last = Cycles::ZERO;
        for _ in 0..10 {
            let arr = net.send(0, 1, 1024, Cycles::ZERO);
            assert!(arr > last);
            last = arr;
        }
        assert!(net.stats().queue_cycles > 0);
        assert!(net.stats().mean_queue() > 0.0);
    }

    #[test]
    fn leaf_spine_redundancy_beats_fat_tree_under_burst() {
        // The Figure 7/15 mechanism in miniature: simultaneous messages
        // between the same endpoint pair spread over the leaf-spine's
        // disjoint paths but serialize through the fat tree's root.
        let cfg = NetworkConfig::on_package();
        let mut ls = Network::new(LeafSpine::paper_default(), cfg);
        let mut ft = Network::new(FatTree::new(32), cfg);
        let mut ls_last = Cycles::ZERO;
        let mut ft_last = Cycles::ZERO;
        for _ in 0..16 {
            ls_last = ls_last.max(ls.send(0, 31, 1024, Cycles::ZERO));
            ft_last = ft_last.max(ft.send(0, 31, 1024, Cycles::ZERO));
        }
        assert!(
            ls_last < ft_last,
            "leaf-spine {ls_last} should beat fat tree {ft_last}"
        );
    }

    #[test]
    fn least_loaded_beats_deterministic_on_leaf_spine() {
        let mut adaptive = Network::new(LeafSpine::paper_default(), NetworkConfig::on_package());
        let det_cfg = NetworkConfig {
            strategy: RouteStrategy::Deterministic,
            ..NetworkConfig::on_package()
        };
        let mut det = Network::new(LeafSpine::paper_default(), det_cfg);
        let mut a_last = Cycles::ZERO;
        let mut d_last = Cycles::ZERO;
        for _ in 0..16 {
            a_last = a_last.max(adaptive.send(0, 31, 1024, Cycles::ZERO));
            d_last = d_last.max(det.send(0, 31, 1024, Cycles::ZERO));
        }
        assert!(
            a_last < d_last,
            "adaptive {a_last} vs deterministic {d_last}"
        );
    }

    #[test]
    fn self_send_costs_one_hop() {
        let mut net = Network::new(Mesh2D::new(2, 2), NetworkConfig::on_package());
        let arr = net.send(1, 1, 64, Cycles::new(100));
        assert_eq!(arr, Cycles::new(100) + net.config().hop_latency);
    }

    #[test]
    fn ideal_latency_matches_first_uncontended_send() {
        let mut net = Network::new(LeafSpine::paper_default(), NetworkConfig::on_package());
        let ideal = net.ideal_latency(0, 31, 256);
        // With no prior traffic, least-loaded picks links with equal (zero)
        // load, so the realized path has the same shape.
        let real = net.send(0, 31, 256, Cycles::ZERO);
        assert_eq!(real, ideal);
    }

    #[test]
    fn reset_clears_state() {
        let mut net = Network::new(Mesh2D::new(2, 1), NetworkConfig::on_package());
        net.send(0, 1, 4096, Cycles::ZERO);
        net.reset();
        assert_eq!(net.stats(), NetworkStats::default());
        let a = net.send(0, 1, 4096, Cycles::ZERO);
        let mut fresh = Network::new(Mesh2D::new(2, 1), NetworkConfig::on_package());
        assert_eq!(a, fresh.send(0, 1, 4096, Cycles::ZERO));
    }

    #[test]
    fn random_ecmp_is_deterministic_per_seed() {
        let cfg = NetworkConfig {
            strategy: RouteStrategy::RandomEcmp,
            ..NetworkConfig::on_package()
        };
        let run = |seed: u64| {
            let mut net = Network::new(LeafSpine::paper_default(), NetworkConfig { seed, ..cfg });
            (0..20)
                .map(|i| net.send(0, 31, 512, Cycles::new(i * 3)).raw())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn send_full_shares_are_exhaustive() {
        let mut net = Network::new(Mesh2D::new(4, 1), NetworkConfig::on_package());
        // Load the path, then send again: queueing appears and the shares
        // must still telescope to the arrival time.
        net.send(0, 3, 4096, Cycles::ZERO);
        let depart = Cycles::new(10);
        let tr = net.send_full(0, 3, 1024, depart);
        assert_eq!(tr.hops, 3);
        assert!(tr.queued > Cycles::ZERO);
        assert_eq!(
            tr.arrival,
            depart + tr.serialization + tr.queued + tr.propagation(net.config().hop_latency)
        );
    }

    #[test]
    fn send_full_self_send() {
        let mut net = Network::new(Mesh2D::new(2, 2), NetworkConfig::on_package());
        let tr = net.send_full(1, 1, 64, Cycles::new(100));
        assert_eq!(tr.hops, 0);
        assert_eq!(tr.serialization, Cycles::ZERO);
        assert_eq!(tr.queued, Cycles::ZERO);
        let hop = net.config().hop_latency;
        assert_eq!(tr.propagation(hop), hop);
        assert_eq!(tr.arrival, Cycles::new(100) + hop);
    }

    #[test]
    fn link_outage_delays_until_window_end_and_shares_telescope() {
        let mut net = Network::new(Mesh2D::new(2, 1), NetworkConfig::on_package());
        let healthy = net.send_full(0, 1, 64, Cycles::ZERO);
        net.reset();
        // Black out every link until cycle 500: the message must wait out
        // the outage, and the wait must surface as queueing.
        for link in 0..net.num_links() {
            net.inject_link_fault(
                link,
                FaultWindow::new(Cycles::ZERO, Cycles::new(500), f64::INFINITY),
            );
        }
        let tr = net.send_full(0, 1, 64, Cycles::ZERO);
        assert!(tr.arrival >= Cycles::new(500) + healthy.arrival);
        assert_eq!(tr.serialization, healthy.serialization);
        assert_eq!(
            tr.arrival,
            tr.serialization + tr.queued + tr.propagation(net.config().hop_latency)
        );
        // After the window, the fault is gone.
        let later = net.send_full(0, 1, 64, Cycles::new(1_000));
        assert_eq!(later.queued, Cycles::ZERO);
    }

    #[test]
    fn link_degradation_stretches_occupancy_as_queueing() {
        let mut cfg = NetworkConfig::on_package();
        cfg.strategy = RouteStrategy::Deterministic;
        let mut net = Network::new(Mesh2D::new(2, 1), cfg);
        let healthy = net.send_full(0, 1, 4096, Cycles::ZERO);
        net.reset();
        for link in 0..net.num_links() {
            net.inject_link_fault(link, FaultWindow::new(Cycles::ZERO, Cycles::MAX, 4.0));
        }
        let tr = net.send_full(0, 1, 4096, Cycles::ZERO);
        assert!(
            tr.arrival > healthy.arrival,
            "{} > {}",
            tr.arrival,
            healthy.arrival
        );
        assert_eq!(tr.serialization, healthy.serialization);
        assert_eq!(
            tr.queued,
            healthy.serialization.scale(4.0) - healthy.serialization
        );
        assert_eq!(
            tr.arrival,
            tr.serialization + tr.queued + tr.propagation(net.config().hop_latency)
        );
    }

    #[test]
    fn contention_free_mode_still_honors_faults() {
        let mut net = Network::new(Mesh2D::new(2, 1), NetworkConfig::contention_free());
        let healthy = net.send(0, 1, 64, Cycles::ZERO);
        net.inject_link_fault(
            0,
            FaultWindow::new(Cycles::ZERO, Cycles::new(300), f64::INFINITY),
        );
        net.inject_link_fault(
            1,
            FaultWindow::new(Cycles::ZERO, Cycles::new(300), f64::INFINITY),
        );
        let faulted = net.send(0, 1, 64, Cycles::ZERO);
        assert!(faulted >= Cycles::new(300));
        assert!(faulted > healthy);
    }

    #[test]
    fn fault_injection_wraps_link_index() {
        let mut net = Network::new(Mesh2D::new(2, 1), NetworkConfig::on_package());
        let n = net.num_links();
        assert!(n > 0);
        // An out-of-range index lands on `index % n` instead of panicking.
        net.inject_link_fault(
            n + 1,
            FaultWindow::new(Cycles::ZERO, Cycles::new(100), f64::INFINITY),
        );
        assert_eq!(net.faults.iter().map(Vec::len).sum::<usize>(), 1);
        assert_eq!(net.faults[1].len(), 1);
    }

    #[test]
    fn chained_outage_windows_compose() {
        let mut cfg = NetworkConfig::on_package();
        cfg.strategy = RouteStrategy::Deterministic;
        let mut net = Network::new(Mesh2D::new(2, 1), cfg);
        // Two abutting outages: escaping the first lands in the second.
        net.inject_link_fault(
            0,
            FaultWindow::new(Cycles::ZERO, Cycles::new(100), f64::INFINITY),
        );
        net.inject_link_fault(
            0,
            FaultWindow::new(Cycles::new(100), Cycles::new(250), f64::INFINITY),
        );
        let tr = net.send_full(0, 1, 64, Cycles::ZERO);
        assert!(tr.queued >= Cycles::new(250), "queued {}", tr.queued);
    }

    #[test]
    fn wider_links_serialize_faster() {
        let mut net = Network::new(FatTree::new(32), NetworkConfig::on_package());
        // Root links are 4x wide: a large message's serialization at the
        // root is a quarter of a leaf link's.
        let arrive = net.send(0, 31, 4096, Cycles::ZERO);
        // Leaf-width serialization on all 10 hops would cost
        // 10 x (512 + 5); widened inner links must beat that.
        assert!(arrive < Cycles::new(10 * 517));
    }
}
