//! On-package and inter-server interconnect models (paper §3.4, §4.2).
//!
//! The paper shows that on-package interconnect (ICN) contention is a major
//! tail-latency source (Figure 7) and proposes a hierarchical leaf-spine
//! topology with many redundant low-hop paths (§4.2, Figure 12). This crate
//! implements the three ICNs the evaluation compares, plus the inter-server
//! datacenter network:
//!
//! - [`Mesh2D`]: the ServerClass 2D mesh with XY routing.
//! - [`FatTree`]: the ScaleOut binary fat tree (63 network hubs, 10-hop
//!   worst case for 32 clusters).
//! - [`LeafSpine`]: uManycore's 3-level hierarchical leaf-spine (32 leaf
//!   NHs, 4 pods of 4 second-level NHs, 8 third-level NHs; 4-hop worst
//!   case, ECMP over redundant paths).
//! - [`Network`]: wraps a topology with per-link serialization and
//!   backpressure, modelling contention as link occupancy (the on-package
//!   network is lossless with back-pressure, §4.1, so queueing — never
//!   loss — is the contention mechanism).
//! - [`ExternalNetwork`]: the 1 us-RTT, 200 GB/s inter-server fabric
//!   (Table 2).
//!
//! # Examples
//!
//! ```
//! use um_net::{LeafSpine, Network, NetworkConfig, Topology};
//!
//! let topo = LeafSpine::paper_default(); // 32 clusters, 4 pods
//! assert_eq!(topo.endpoints(), 32);
//! let mut net = Network::new(topo, NetworkConfig::on_package());
//! let arrive = net.send(0, 31, 256, um_sim::Cycles::ZERO);
//! assert!(arrive > um_sim::Cycles::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod external;
pub mod fattree;
pub mod leafspine;
pub mod mesh;
pub mod network;
pub mod topology;

pub use external::ExternalNetwork;
pub use fattree::FatTree;
pub use leafspine::LeafSpine;
pub use mesh::Mesh2D;
pub use network::{Network, NetworkConfig, NetworkStats, RouteStrategy};
pub use topology::{LinkId, Topology};
