//! Binary fat-tree topology with up/down routing.
//!
//! The ScaleOut baseline's ICN (Table 2 / §5): for 32 clusters the tree has
//! 63 network hubs and a worst-case path of 10 hops (5 up to the root, 5
//! down). Links widen towards the root ("fattening"), but — as in real
//! implementations — the widening is capped, so the root remains a
//! contention point under load. Figure 7 quantifies exactly that.

use crate::topology::{LinkId, Topology};

/// A binary fat tree over a power-of-two number of leaf endpoints.
///
/// Internal nodes are addressed as a binary heap: root is node 1, node `i`
/// has children `2i` and `2i+1`, and leaf endpoint `e` is node `leaves + e`.
///
/// # Examples
///
/// ```
/// use um_net::{FatTree, Topology};
///
/// let t = FatTree::new(32); // the ScaleOut configuration
/// assert_eq!(t.endpoints(), 32);
/// assert_eq!(t.total_hubs(), 63);
/// assert_eq!(t.diameter(), 10);
/// ```
#[derive(Clone, Debug)]
pub struct FatTree {
    leaves: usize,
    depth: u32,
    /// Bandwidth multiplier cap for links near the root.
    width_cap: f64,
}

impl FatTree {
    /// Default widening cap: each level doubles, up to 8x a leaf link.
    /// That is half the full-bisection width for 32 leaves — enough that
    /// the tree degrades more gracefully than the mesh under uniform
    /// load (Figure 7: mesh 14.7x vs fat tree 7.5x), but the shared
    /// upper levels still congest well before a leaf-spine does.
    pub const DEFAULT_WIDTH_CAP: f64 = 8.0;

    /// Creates a fat tree over `leaves` endpoints with the default cap.
    ///
    /// # Panics
    ///
    /// Panics unless `leaves` is a power of two and at least 2.
    pub fn new(leaves: usize) -> Self {
        Self::with_width_cap(leaves, Self::DEFAULT_WIDTH_CAP)
    }

    /// Creates a fat tree with an explicit link-widening cap.
    ///
    /// # Panics
    ///
    /// Panics unless `leaves` is a power of two >= 2 and `width_cap >= 1.0`.
    pub fn with_width_cap(leaves: usize, width_cap: f64) -> Self {
        assert!(
            leaves.is_power_of_two() && leaves >= 2,
            "leaves must be a power of two >= 2, got {leaves}"
        );
        assert!(width_cap >= 1.0, "width cap below 1.0");
        Self {
            leaves,
            depth: leaves.trailing_zeros(),
            width_cap,
        }
    }

    /// Total number of hubs (leaves + internal nodes).
    pub fn total_hubs(&self) -> usize {
        2 * self.leaves - 1
    }

    /// Analytic hop count of the up/down route from `src` to `dst`: twice
    /// the distance to the lowest common ancestor. Always equals
    /// `route(src, dst, ..).len()`.
    ///
    /// # Panics
    ///
    /// Panics if either leaf is out of range.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        assert!(
            src < self.leaves && dst < self.leaves,
            "node out of range: {src} or {dst} >= {}",
            self.leaves
        );
        let mut a = self.heap_of_leaf(src);
        let mut b = self.heap_of_leaf(dst);
        let mut hops = 0;
        while a != b {
            a /= 2;
            b /= 2;
            hops += 2;
        }
        hops
    }

    fn heap_of_leaf(&self, e: usize) -> usize {
        self.leaves + e
    }

    /// Directed link ids: for heap node `i` in `2..2*leaves`, the up link
    /// `i -> i/2` has id `2*(i-2)` and the down link `i/2 -> i` has id
    /// `2*(i-2) + 1`.
    fn up_link(i: usize) -> LinkId {
        2 * (i - 2)
    }

    fn down_link(i: usize) -> LinkId {
        2 * (i - 2) + 1
    }

    fn node_depth(i: usize) -> u32 {
        (usize::BITS - 1) - i.leading_zeros()
    }
}

impl Topology for FatTree {
    fn endpoints(&self) -> usize {
        self.leaves
    }

    fn num_links(&self) -> usize {
        2 * (2 * self.leaves - 2)
    }

    fn route(
        &self,
        src: usize,
        dst: usize,
        _choose: &mut dyn FnMut(&[LinkId]) -> usize,
    ) -> Vec<LinkId> {
        assert!(
            src < self.leaves && dst < self.leaves,
            "node out of range: {src} or {dst} >= {}",
            self.leaves
        );
        if src == dst {
            return Vec::new();
        }
        let mut a = self.heap_of_leaf(src);
        let mut b = self.heap_of_leaf(dst);
        let mut up = Vec::new();
        let mut down = Vec::new();
        // Climb to the lowest common ancestor.
        while a != b {
            up.push(Self::up_link(a));
            down.push(Self::down_link(b));
            a /= 2;
            b /= 2;
        }
        down.reverse();
        up.extend(down);
        up
    }

    fn link_width(&self, link: LinkId) -> f64 {
        // Recover the child node of the link, then its level above leaves.
        let child = link / 2 + 2;
        let level = self.depth - Self::node_depth(child);
        (2.0f64.powi(level as i32)).min(self.width_cap)
    }

    fn name(&self) -> &'static str {
        "fat-tree"
    }

    fn diameter(&self) -> usize {
        2 * self.depth as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{first_choice, testutil::check_routing_invariants};

    #[test]
    fn invariants_32() {
        check_routing_invariants(&FatTree::new(32));
    }

    #[test]
    fn paper_configuration() {
        let t = FatTree::new(32);
        assert_eq!(t.total_hubs(), 63);
        assert_eq!(t.diameter(), 10);
    }

    #[test]
    fn siblings_route_in_two_hops() {
        let t = FatTree::new(8);
        assert_eq!(t.route(0, 1, &mut first_choice).len(), 2);
    }

    #[test]
    fn opposite_halves_cross_root() {
        let t = FatTree::new(8);
        let route = t.route(0, 7, &mut first_choice);
        assert_eq!(route.len(), 6); // 3 up + 3 down for depth-3 tree
    }

    #[test]
    fn route_is_symmetric_in_length() {
        let t = FatTree::new(16);
        for (a, b) in [(0, 15), (3, 9), (7, 8)] {
            let f = t.route(a, b, &mut first_choice).len();
            let r = t.route(b, a, &mut first_choice).len();
            assert_eq!(f, r);
        }
    }

    #[test]
    fn widths_grow_toward_root_and_cap() {
        let t = FatTree::new(32);
        let route = t.route(0, 31, &mut first_choice); // through the root
        let widths: Vec<f64> = route.iter().map(|&l| t.link_width(l)).collect();
        // Going up: 1, 2, 4, 8, 8 then down again (doubling capped at 8).
        assert_eq!(widths[0], 1.0);
        assert_eq!(widths[1], 2.0);
        assert_eq!(widths[2], 4.0);
        assert_eq!(widths[4], 8.0); // capped at the root
        assert_eq!(*widths.last().expect("nonempty"), 1.0);
    }

    #[test]
    fn shared_root_links_for_cross_traffic() {
        // All cross-half traffic uses the same two root links: the
        // structural reason the fat tree congests in Figure 7.
        let t = FatTree::new(8);
        let r1 = t.route(0, 4, &mut first_choice);
        let r2 = t.route(1, 5, &mut first_choice);
        let shared: Vec<_> = r1.iter().filter(|l| r2.contains(l)).collect();
        assert!(
            !shared.is_empty(),
            "cross-half routes must share root links"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        FatTree::new(12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::topology::{first_choice, testutil::check_routing_invariants};
    use proptest::prelude::*;

    proptest! {
        /// Routing invariants hold for every power-of-two size.
        #[test]
        fn invariants_any_size(log2 in 1u32..7) {
            let t = FatTree::new(1 << log2);
            check_routing_invariants(&t);
        }

        /// The up-phase and down-phase have equal length, and link widths
        /// along a route rise to the LCA then fall.
        #[test]
        fn route_is_a_tent(log2 in 2u32..7, a in 0usize..64, b in 0usize..64) {
            let leaves = 1usize << log2;
            let t = FatTree::new(leaves);
            let (src, dst) = (a % leaves, b % leaves);
            prop_assume!(src != dst);
            let route = t.route(src, dst, &mut first_choice);
            prop_assert_eq!(route.len() % 2, 0);
            let widths: Vec<f64> = route.iter().map(|&l| t.link_width(l)).collect();
            let half = widths.len() / 2;
            // Non-decreasing up, non-increasing down.
            for w in widths[..half].windows(2) {
                prop_assert!(w[0] <= w[1], "up-phase widths must not shrink");
            }
            for w in widths[half..].windows(2) {
                prop_assert!(w[0] >= w[1], "down-phase widths must not grow");
            }
        }
    }
}
