//! The topology abstraction shared by all ICNs.

/// Index of a directed link in a topology's link table.
pub type LinkId = usize;

/// A static interconnect topology over a set of endpoint nodes.
///
/// Endpoints are the entities that inject and receive traffic — in this
/// reproduction, one endpoint per cluster (the cluster's network hub acts
/// as the attachment point). Links are *directed*: each physical cable
/// contributes one link per direction, so opposing flows never contend.
///
/// `route` builds one source-to-destination path. Where the topology has
/// redundant paths (the leaf-spine's multiple spines), the `choose`
/// callback picks among candidates; it receives the candidate *first links*
/// of each alternative so the caller can implement random or least-loaded
/// (adaptive) selection.
pub trait Topology {
    /// Number of endpoint nodes.
    fn endpoints(&self) -> usize;

    /// Total number of directed links.
    fn num_links(&self) -> usize;

    /// Builds a route from `src` to `dst` as a sequence of directed links.
    ///
    /// An empty route is returned when `src == dst` (local delivery).
    /// `choose` is called at every branch point with the candidate link ids
    /// for the next step and must return an index into that slice.
    ///
    /// # Panics
    ///
    /// Implementations panic if `src` or `dst` is out of range, or if
    /// `choose` returns an out-of-range index.
    fn route(
        &self,
        src: usize,
        dst: usize,
        choose: &mut dyn FnMut(&[LinkId]) -> usize,
    ) -> Vec<LinkId>;

    /// Relative bandwidth of a link (1.0 = base link width). Fat trees
    /// widen links towards the root.
    fn link_width(&self, _link: LinkId) -> f64 {
        1.0
    }

    /// Human-readable topology name for reports.
    fn name(&self) -> &'static str;

    /// Worst-case hop count between any two endpoints.
    fn diameter(&self) -> usize;
}

/// Routes through `choose` that always picks the first candidate; useful
/// for tests and for deterministic baselines.
pub fn first_choice(candidates: &[LinkId]) -> usize {
    debug_assert!(!candidates.is_empty());
    0
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Exhaustively checks routing invariants for a topology:
    /// self-routes are empty, all links are in range, route length is
    /// bounded by the diameter.
    pub fn check_routing_invariants<T: Topology>(topo: &T) {
        let n = topo.endpoints();
        for src in 0..n {
            for dst in 0..n {
                let route = topo.route(src, dst, &mut first_choice);
                if src == dst {
                    assert!(route.is_empty(), "self route {src} not empty");
                    continue;
                }
                assert!(!route.is_empty(), "no route {src}->{dst}");
                assert!(
                    route.len() <= topo.diameter(),
                    "route {src}->{dst} has {} hops > diameter {}",
                    route.len(),
                    topo.diameter()
                );
                for &l in &route {
                    assert!(l < topo.num_links(), "link {l} out of range");
                }
            }
        }
    }
}
