//! Hierarchical leaf-spine topology (paper §4.2, Figure 12).
//!
//! uManycore's ICN: each cluster's network hub is a *leaf*; within a pod,
//! every leaf connects all-to-all to the pod's second-level hubs; a third
//! level of hubs connects all pods, with every third-level hub linked to
//! every second-level hub. Any two leaves are at most 4 hops apart, and
//! every stage offers multiple equal-cost paths — the redundancy that lets
//! same-source/same-destination messages proceed in parallel and keeps
//! tail latency low.

use crate::topology::{LinkId, Topology};

/// The paper's hierarchical leaf-spine ICN.
///
/// # Examples
///
/// ```
/// use um_net::{LeafSpine, Topology};
///
/// let t = LeafSpine::paper_default();
/// assert_eq!(t.endpoints(), 32);   // 32 clusters
/// assert_eq!(t.total_hubs(), 56);  // 32 + 16 + 8 NHs
/// assert_eq!(t.diameter(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct LeafSpine {
    pods: usize,
    leaves_per_pod: usize,
    spines_per_pod: usize,
    top_spines: usize,
}

impl LeafSpine {
    /// The 1024-core uManycore configuration (§5): 4 pods x 8 leaves,
    /// 4 second-level NHs per pod, 8 third-level NHs.
    pub fn paper_default() -> Self {
        Self::new(4, 8, 4, 8)
    }

    /// Creates a hierarchical leaf-spine.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        pods: usize,
        leaves_per_pod: usize,
        spines_per_pod: usize,
        top_spines: usize,
    ) -> Self {
        assert!(pods > 0, "need at least one pod");
        assert!(leaves_per_pod > 0, "need at least one leaf per pod");
        assert!(spines_per_pod > 0, "need at least one spine per pod");
        assert!(top_spines > 0, "need at least one top spine");
        Self {
            pods,
            leaves_per_pod,
            spines_per_pod,
            top_spines,
        }
    }

    /// Total network hubs across all three levels.
    pub fn total_hubs(&self) -> usize {
        self.pods * (self.leaves_per_pod + self.spines_per_pod) + self.top_spines
    }

    /// Number of equal-cost paths between two leaves in different pods.
    pub fn cross_pod_paths(&self) -> usize {
        self.spines_per_pod * self.top_spines * self.spines_per_pod
    }

    /// Number of equal-cost paths between two leaves in the same pod.
    pub fn intra_pod_paths(&self) -> usize {
        self.spines_per_pod
    }

    /// Analytic hop count between two leaves: 0 to self, 2 within a pod,
    /// 4 across pods. Always equals `route(src, dst, ..).len()` for every
    /// chooser, since all equal-cost paths have the same length.
    ///
    /// # Panics
    ///
    /// Panics if either leaf is out of range.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        let n = self.endpoints();
        assert!(
            src < n && dst < n,
            "node out of range: {src} or {dst} >= {n}"
        );
        if src == dst {
            0
        } else if self.pod_of(src) == self.pod_of(dst) {
            2
        } else {
            4
        }
    }

    fn pod_of(&self, leaf: usize) -> usize {
        leaf / self.leaves_per_pod
    }

    // ---- link numbering ----
    // Leaf<->L2 links come first: for leaf `l` (global) and spine `s`
    // (pod-local), up = ((l * S) + s) * 2, down = up + 1.
    // Then L2<->L3: for L2 `g` (global) and top `t`,
    // up = leaf_links + ((g * T) + t) * 2, down = up + 1.

    fn leaf_links(&self) -> usize {
        self.pods * self.leaves_per_pod * self.spines_per_pod * 2
    }

    fn leaf_up(&self, leaf: usize, spine: usize) -> LinkId {
        (leaf * self.spines_per_pod + spine) * 2
    }

    fn leaf_down(&self, leaf: usize, spine: usize) -> LinkId {
        self.leaf_up(leaf, spine) + 1
    }

    fn l2_global(&self, pod: usize, spine: usize) -> usize {
        pod * self.spines_per_pod + spine
    }

    fn l2_up(&self, l2: usize, top: usize) -> LinkId {
        self.leaf_links() + (l2 * self.top_spines + top) * 2
    }

    fn l2_down(&self, l2: usize, top: usize) -> LinkId {
        self.l2_up(l2, top) + 1
    }
}

impl Topology for LeafSpine {
    fn endpoints(&self) -> usize {
        self.pods * self.leaves_per_pod
    }

    fn num_links(&self) -> usize {
        self.leaf_links() + self.pods * self.spines_per_pod * self.top_spines * 2
    }

    fn route(
        &self,
        src: usize,
        dst: usize,
        choose: &mut dyn FnMut(&[LinkId]) -> usize,
    ) -> Vec<LinkId> {
        let n = self.endpoints();
        assert!(
            src < n && dst < n,
            "node out of range: {src} or {dst} >= {n}"
        );
        if src == dst {
            return Vec::new();
        }
        let sp = self.pod_of(src);
        let dp = self.pod_of(dst);
        let s_count = self.spines_per_pod;

        if sp == dp {
            // Two hops via any of the pod's spines.
            let candidates: Vec<LinkId> = (0..s_count).map(|s| self.leaf_up(src, s)).collect();
            let s = pick(choose, &candidates);
            return vec![self.leaf_up(src, s), self.leaf_down(dst, s)];
        }

        // Four hops: leaf -> L2(src pod) -> L3 -> L2(dst pod) -> leaf.
        let up_candidates: Vec<LinkId> = (0..s_count).map(|s| self.leaf_up(src, s)).collect();
        let s_src = pick(choose, &up_candidates);
        let l2_src = self.l2_global(sp, s_src);

        let top_candidates: Vec<LinkId> = (0..self.top_spines)
            .map(|t| self.l2_up(l2_src, t))
            .collect();
        let top = pick(choose, &top_candidates);

        // Present the *final-hop* links as the stage-3 candidates: the
        // spine-to-leaf hop into a popular destination is the likelier
        // bottleneck, so an adaptive chooser should compare those.
        let down_candidates: Vec<LinkId> = (0..s_count).map(|s| self.leaf_down(dst, s)).collect();
        let s_dst = pick(choose, &down_candidates);
        let l2_dst = self.l2_global(dp, s_dst);

        vec![
            self.leaf_up(src, s_src),
            self.l2_up(l2_src, top),
            self.l2_down(l2_dst, top),
            self.leaf_down(dst, s_dst),
        ]
    }

    fn name(&self) -> &'static str {
        "leaf-spine"
    }

    fn diameter(&self) -> usize {
        if self.pods == 1 {
            2
        } else {
            4
        }
    }
}

/// Applies the chooser and validates its answer.
fn pick(choose: &mut dyn FnMut(&[LinkId]) -> usize, candidates: &[LinkId]) -> usize {
    let idx = choose(candidates);
    assert!(
        idx < candidates.len(),
        "chooser returned {idx} for {} candidates",
        candidates.len()
    );
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{first_choice, testutil::check_routing_invariants};

    #[test]
    fn invariants_paper_default() {
        check_routing_invariants(&LeafSpine::paper_default());
    }

    #[test]
    fn paper_counts() {
        let t = LeafSpine::paper_default();
        assert_eq!(t.total_hubs(), 56);
        assert_eq!(t.cross_pod_paths(), 4 * 8 * 4);
        assert_eq!(t.intra_pod_paths(), 4);
    }

    #[test]
    fn intra_pod_is_two_hops() {
        let t = LeafSpine::paper_default();
        assert_eq!(t.route(0, 7, &mut first_choice).len(), 2);
    }

    #[test]
    fn cross_pod_is_four_hops() {
        let t = LeafSpine::paper_default();
        assert_eq!(t.route(0, 31, &mut first_choice).len(), 4);
    }

    #[test]
    fn redundant_paths_are_disjoint() {
        // Different spine choices yield link-disjoint routes — the paper's
        // "multiple messages with the same source and destination can
        // proceed in parallel".
        let t = LeafSpine::paper_default();
        let mut pick0 = |_c: &[LinkId]| 0usize;
        let mut pick1 = |_c: &[LinkId]| 1usize;
        let r0 = t.route(0, 31, &mut pick0);
        let r1 = t.route(0, 31, &mut pick1);
        assert!(r0.iter().all(|l| !r1.contains(l)), "{r0:?} vs {r1:?}");
    }

    #[test]
    fn chooser_sees_all_alternatives() {
        let t = LeafSpine::paper_default();
        let mut seen = Vec::new();
        let mut spy = |c: &[LinkId]| {
            seen.push(c.len());
            0
        };
        t.route(0, 31, &mut spy);
        assert_eq!(seen, vec![4, 8, 4]); // spines, tops, dst spines
    }

    #[test]
    fn single_pod_diameter_two() {
        let t = LeafSpine::new(1, 8, 4, 1);
        assert_eq!(t.diameter(), 2);
        check_routing_invariants(&t);
    }

    #[test]
    fn link_ids_unique_across_stages() {
        let t = LeafSpine::paper_default();
        use std::collections::HashSet;
        let mut ids = HashSet::new();
        for leaf in 0..t.endpoints() {
            for s in 0..t.spines_per_pod {
                assert!(ids.insert(t.leaf_up(leaf, s)));
                assert!(ids.insert(t.leaf_down(leaf, s)));
            }
        }
        for l2 in 0..(t.pods * t.spines_per_pod) {
            for top in 0..t.top_spines {
                assert!(ids.insert(t.l2_up(l2, top)));
                assert!(ids.insert(t.l2_down(l2, top)));
            }
        }
        assert_eq!(ids.len(), t.num_links());
        assert_eq!(ids.iter().max(), Some(&(t.num_links() - 1)));
    }

    #[test]
    #[should_panic(expected = "chooser returned")]
    fn bad_chooser_panics() {
        let t = LeafSpine::paper_default();
        let mut bad = |_c: &[LinkId]| 999usize;
        t.route(0, 1, &mut bad);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::topology::{first_choice, testutil::check_routing_invariants};
    use proptest::prelude::*;

    proptest! {
        /// Routing invariants hold for arbitrary leaf-spine dimensions.
        #[test]
        fn invariants_any_dims(
            pods in 1usize..5,
            leaves in 1usize..9,
            spines in 1usize..5,
            tops in 1usize..9,
        ) {
            let t = LeafSpine::new(pods, leaves, spines, tops);
            check_routing_invariants(&t);
        }

        /// Every chooser answer in range produces a valid route whose
        /// links are unique within the route.
        #[test]
        fn any_choice_is_valid(
            src in 0usize..32,
            dst in 0usize..32,
            picks in proptest::collection::vec(0usize..8, 3),
        ) {
            let t = LeafSpine::paper_default();
            let mut i = 0;
            let mut choose = |c: &[LinkId]| {
                let p = picks[i % picks.len()] % c.len();
                i += 1;
                p
            };
            let route = t.route(src % 32, dst % 32, &mut choose);
            for &l in &route {
                prop_assert!(l < t.num_links());
            }
            let unique: std::collections::HashSet<_> = route.iter().collect();
            prop_assert_eq!(unique.len(), route.len(), "no repeated links");
            let _ = first_choice; // keep the import used under cfg(test)
        }
    }
}
