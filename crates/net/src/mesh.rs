//! 2D mesh topology with dimension-ordered (XY) routing.
//!
//! The ServerClass baseline's on-chip network (Table 2), and one of the two
//! ICNs whose contention Figure 7 quantifies on the ScaleOut manycore.

use crate::topology::{LinkId, Topology};
use std::collections::BTreeMap;

/// A 2D mesh of endpoint routers with XY (X first, then Y) routing.
///
/// Every grid cell is both a router and an endpoint. Each physical channel
/// is two directed links.
///
/// # Examples
///
/// ```
/// use um_net::{Mesh2D, Topology};
///
/// let mesh = Mesh2D::new(8, 4); // 32 clusters as in the paper
/// assert_eq!(mesh.endpoints(), 32);
/// assert_eq!(mesh.diameter(), 7 + 3);
/// ```
#[derive(Clone, Debug)]
pub struct Mesh2D {
    cols: usize,
    rows: usize,
    /// (from, to) -> link id
    link_ids: BTreeMap<(usize, usize), LinkId>,
    num_links: usize,
}

impl Mesh2D {
    /// Creates a `cols x rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        let mut link_ids = BTreeMap::new();
        let mut next = 0;
        let id = |c: usize, r: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                let here = id(c, r);
                if c + 1 < cols {
                    link_ids.insert((here, id(c + 1, r)), next);
                    next += 1;
                    link_ids.insert((id(c + 1, r), here), next);
                    next += 1;
                }
                if r + 1 < rows {
                    link_ids.insert((here, id(c, r + 1)), next);
                    next += 1;
                    link_ids.insert((id(c, r + 1), here), next);
                    next += 1;
                }
            }
        }
        Self {
            cols,
            rows,
            link_ids,
            num_links: next,
        }
    }

    /// Creates a near-square mesh for `endpoints` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` has no factorization (it always does) or is 0.
    pub fn near_square(endpoints: usize) -> Self {
        assert!(endpoints > 0, "need at least one endpoint");
        let mut best = (1, endpoints);
        let mut c = 1;
        while c * c <= endpoints {
            if endpoints.is_multiple_of(c) {
                best = (endpoints / c, c);
            }
            c += 1;
        }
        Self::new(best.0, best.1)
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Analytic hop count of the XY route from `src` to `dst`: the
    /// Manhattan distance. Always equals `route(src, dst, ..).len()`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        assert!(
            src < self.endpoints() && dst < self.endpoints(),
            "node out of range"
        );
        let (sc, sr) = self.coords(src);
        let (dc, dr) = self.coords(dst);
        sc.abs_diff(dc) + sr.abs_diff(dr)
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.cols, node / self.cols)
    }

    fn link(&self, from: usize, to: usize) -> LinkId {
        *self
            .link_ids
            .get(&(from, to))
            .unwrap_or_else(|| panic!("no mesh link {from}->{to}"))
    }
}

impl Topology for Mesh2D {
    fn endpoints(&self) -> usize {
        self.cols * self.rows
    }

    fn num_links(&self) -> usize {
        self.num_links
    }

    fn route(
        &self,
        src: usize,
        dst: usize,
        _choose: &mut dyn FnMut(&[LinkId]) -> usize,
    ) -> Vec<LinkId> {
        assert!(
            src < self.endpoints() && dst < self.endpoints(),
            "node out of range"
        );
        let (mut c, mut r) = self.coords(src);
        let (dc, dr) = self.coords(dst);
        let mut route = Vec::new();
        let id = |c: usize, r: usize| r * self.cols + c;
        while c != dc {
            let next_c = if dc > c { c + 1 } else { c - 1 };
            route.push(self.link(id(c, r), id(next_c, r)));
            c = next_c;
        }
        while r != dr {
            let next_r = if dr > r { r + 1 } else { r - 1 };
            route.push(self.link(id(c, r), id(c, next_r)));
            r = next_r;
        }
        route
    }

    fn name(&self) -> &'static str {
        "2d-mesh"
    }

    fn diameter(&self) -> usize {
        (self.cols - 1) + (self.rows - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{first_choice, testutil::check_routing_invariants};

    #[test]
    fn invariants_8x4() {
        check_routing_invariants(&Mesh2D::new(8, 4));
    }

    #[test]
    fn route_length_is_manhattan_distance() {
        let m = Mesh2D::new(4, 4);
        // (0,0) -> (3,2): 3 + 2 hops.
        let route = m.route(0, 2 * 4 + 3, &mut first_choice);
        assert_eq!(route.len(), 5);
    }

    #[test]
    fn xy_routing_is_deterministic() {
        let m = Mesh2D::new(4, 4);
        let a = m.route(1, 14, &mut first_choice);
        let b = m.route(1, 14, &mut first_choice);
        assert_eq!(a, b);
    }

    #[test]
    fn opposing_directions_use_distinct_links() {
        let m = Mesh2D::new(2, 1);
        let fwd = m.route(0, 1, &mut first_choice);
        let rev = m.route(1, 0, &mut first_choice);
        assert_ne!(fwd, rev);
    }

    #[test]
    fn near_square_factorizations() {
        assert_eq!(Mesh2D::near_square(32).dims(), (8, 4));
        assert_eq!(Mesh2D::near_square(16).dims(), (4, 4));
        assert_eq!(Mesh2D::near_square(7).dims(), (7, 1));
        assert_eq!(Mesh2D::near_square(1).dims(), (1, 1));
    }

    #[test]
    fn link_count_matches_formula() {
        let m = Mesh2D::new(8, 4);
        // Directed links: 2 * (cols-1)*rows + 2 * cols*(rows-1).
        assert_eq!(m.num_links(), 2 * 7 * 4 + 2 * 8 * 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let m = Mesh2D::new(2, 2);
        m.route(0, 99, &mut first_choice);
    }

    #[test]
    fn single_node_mesh() {
        let m = Mesh2D::new(1, 1);
        assert!(m.route(0, 0, &mut first_choice).is_empty());
        assert_eq!(m.num_links(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::topology::first_choice;
    use proptest::prelude::*;

    proptest! {
        /// A route from src to dst traverses exactly the Manhattan distance.
        #[test]
        fn manhattan(cols in 1usize..9, rows in 1usize..9, a in 0usize..64, b in 0usize..64) {
            let m = Mesh2D::new(cols, rows);
            let n = m.endpoints();
            let (src, dst) = (a % n, b % n);
            let route = m.route(src, dst, &mut first_choice);
            let (sc, sr) = (src % cols, src / cols);
            let (dc, dr) = (dst % cols, dst / cols);
            let manhattan = sc.abs_diff(dc) + sr.abs_diff(dr);
            prop_assert_eq!(route.len(), manhattan);
        }
    }
}
