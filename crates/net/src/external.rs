//! Inter-server datacenter network (Table 2).
//!
//! Requests travel between the 10 servers of the evaluated cluster over a
//! lossy external network with a 1 us round trip and 200 GB/s of NIC
//! bandwidth per server. The R-NIC handles retransmission and congestion
//! control (§4.1); at the timescales simulated, its effect is the base RTT
//! plus serialization and NIC-queueing delay, which is what this model
//! charges.

use um_sim::{Cycles, Frequency};

/// Attribution of one external send from
/// [`ExternalNetwork::send_traced`]: the shares are exhaustive,
/// `arrival == depart + queued + serialization + propagation + jitter`
/// (all zero for a same-server send).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExternalSendTrace {
    /// When the message arrives at the destination server.
    pub arrival: Cycles,
    /// Cycles queued behind earlier messages at the source NIC.
    pub queued: Cycles,
    /// NIC serialization cycles for this message.
    pub serialization: Cycles,
    /// One-way propagation delay charged.
    pub propagation: Cycles,
    /// Caller-supplied per-message propagation jitter (zero for
    /// [`ExternalNetwork::send_traced`]; the cluster fabric samples it
    /// from its latency distribution and passes it to
    /// [`ExternalNetwork::send_traced_jittered`]).
    pub jitter: Cycles,
}

/// The inter-server network: per-server NIC egress queues plus a fixed
/// propagation delay.
///
/// # Examples
///
/// ```
/// use um_net::ExternalNetwork;
/// use um_sim::{Cycles, Frequency};
///
/// let f = Frequency::ghz(2.0);
/// let mut net = ExternalNetwork::paper_default(10, f);
/// let arrive = net.send(0, 1, 1024, Cycles::ZERO);
/// assert!(arrive >= Cycles::new(1000)); // >= one-way 0.5us at 2 GHz
/// ```
#[derive(Clone, Debug)]
pub struct ExternalNetwork {
    servers: usize,
    /// One-way propagation latency.
    one_way: Cycles,
    /// NIC egress bandwidth in bytes per cycle.
    bytes_per_cycle: f64,
    /// Per-server NIC egress availability.
    nic_free_at: Vec<Cycles>,
    messages: u64,
    queue_cycles: u64,
}

impl ExternalNetwork {
    /// Table 2 parameters: 1 us RTT (0.5 us one way) and 200 GB/s per NIC,
    /// expressed in cycles at the package frequency `freq`.
    pub fn paper_default(servers: usize, freq: Frequency) -> Self {
        // 200 GB/s at f GHz = 200 / f bytes per cycle.
        Self::new(
            servers,
            Cycles::from_micros(0.5, freq),
            200.0 / freq.as_ghz(),
        )
    }

    /// Creates an external network.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero or bandwidth is non-positive.
    pub fn new(servers: usize, one_way: Cycles, bytes_per_cycle: f64) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        Self {
            servers,
            one_way,
            bytes_per_cycle,
            nic_free_at: vec![Cycles::ZERO; servers],
            messages: 0,
            queue_cycles: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Sends `bytes` from `src` server to `dst` server departing at
    /// `depart`; returns the arrival time.
    ///
    /// A same-server send costs nothing extra here (it never leaves the
    /// package; the on-package network models that path).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send(&mut self, src: usize, dst: usize, bytes: u64, depart: Cycles) -> Cycles {
        self.send_traced(src, dst, bytes, depart).arrival
    }

    /// Like [`Self::send`], returning the message's full latency
    /// attribution for per-request breakdowns.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send_traced(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        depart: Cycles,
    ) -> ExternalSendTrace {
        self.send_traced_jittered(src, dst, bytes, depart, Cycles::ZERO)
    }

    /// Like [`Self::send_traced`] with an extra per-message propagation
    /// `jitter` on top of the fixed one-way delay. The rack-fabric model
    /// in the cluster layer samples jitter from its configured latency
    /// distribution and threads it through here so NIC queueing still
    /// serializes at the source; the shares stay exhaustive
    /// (`arrival == depart + queued + serialization + propagation +
    /// jitter`). Jitter delays propagation only — it does not hold the
    /// source NIC.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send_traced_jittered(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        depart: Cycles,
        jitter: Cycles,
    ) -> ExternalSendTrace {
        assert!(
            src < self.servers && dst < self.servers,
            "server out of range"
        );
        if src == dst {
            return ExternalSendTrace {
                arrival: depart,
                ..ExternalSendTrace::default()
            };
        }
        self.messages += 1;
        let ser = Cycles::new(((bytes as f64 / self.bytes_per_cycle).ceil() as u64).max(1));
        let start = depart.max(self.nic_free_at[src]);
        let queued = start - depart;
        self.queue_cycles += queued.raw();
        self.nic_free_at[src] = start + ser;
        ExternalSendTrace {
            arrival: start + ser + self.one_way + jitter,
            queued,
            serialization: ser,
            propagation: self.one_way,
            jitter,
        }
    }

    /// Uncontended one-way latency for `bytes`.
    pub fn ideal_latency(&self, bytes: u64) -> Cycles {
        let ser = Cycles::new(((bytes as f64 / self.bytes_per_cycle).ceil() as u64).max(1));
        ser + self.one_way
    }

    /// Messages sent so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Total NIC queueing delay accumulated, in cycles.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// Clears NIC occupancy and statistics.
    pub fn reset(&mut self) {
        self.nic_free_at.fill(Cycles::ZERO);
        self.messages = 0;
        self.queue_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq() -> Frequency {
        Frequency::ghz(2.0)
    }

    #[test]
    fn base_latency_is_half_rtt_plus_serialization() {
        let mut n = ExternalNetwork::paper_default(2, freq());
        let arr = n.send(0, 1, 100, Cycles::ZERO);
        // 0.5us at 2GHz = 1000 cycles; 100B at 100 B/cycle = 1 cycle.
        assert_eq!(arr, Cycles::new(1001));
    }

    #[test]
    fn same_server_is_free() {
        let mut n = ExternalNetwork::paper_default(4, freq());
        assert_eq!(n.send(2, 2, 1_000_000, Cycles::new(5)), Cycles::new(5));
        assert_eq!(n.message_count(), 0);
    }

    #[test]
    fn nic_serializes_egress() {
        let mut n = ExternalNetwork::new(2, Cycles::new(100), 1.0);
        let a = n.send(0, 1, 50, Cycles::ZERO);
        let b = n.send(0, 1, 50, Cycles::ZERO);
        assert_eq!(a, Cycles::new(150));
        assert_eq!(b, Cycles::new(200)); // queued 50 behind the first
        assert_eq!(n.queue_cycles(), 50);
    }

    #[test]
    fn different_sources_do_not_contend() {
        let mut n = ExternalNetwork::new(3, Cycles::new(100), 1.0);
        let a = n.send(0, 2, 50, Cycles::ZERO);
        let b = n.send(1, 2, 50, Cycles::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn traced_shares_are_exhaustive() {
        let mut n = ExternalNetwork::new(2, Cycles::new(100), 1.0);
        n.send(0, 1, 50, Cycles::ZERO);
        let tr = n.send_traced(0, 1, 30, Cycles::new(10));
        // Queues behind the first message's 50-cycle serialization.
        assert_eq!(tr.queued, Cycles::new(40));
        assert_eq!(tr.serialization, Cycles::new(30));
        assert_eq!(tr.propagation, Cycles::new(100));
        assert_eq!(
            tr.arrival,
            Cycles::new(10) + tr.queued + tr.serialization + tr.propagation
        );
    }

    #[test]
    fn traced_same_server_is_all_zero() {
        let mut n = ExternalNetwork::new(2, Cycles::new(100), 1.0);
        let tr = n.send_traced(1, 1, 999, Cycles::new(7));
        assert_eq!(tr.arrival, Cycles::new(7));
        assert_eq!(tr.queued + tr.serialization + tr.propagation, Cycles::ZERO);
        assert_eq!(n.message_count(), 0);
    }

    #[test]
    fn jitter_extends_propagation_but_not_nic_occupancy() {
        let mut n = ExternalNetwork::new(2, Cycles::new(100), 1.0);
        let a = n.send_traced_jittered(0, 1, 50, Cycles::ZERO, Cycles::new(30));
        assert_eq!(a.jitter, Cycles::new(30));
        assert_eq!(
            a.arrival,
            a.queued + a.serialization + a.propagation + a.jitter
        );
        assert_eq!(a.arrival, Cycles::new(180));
        // The next message queues behind serialization only, not jitter.
        let b = n.send_traced_jittered(0, 1, 50, Cycles::ZERO, Cycles::ZERO);
        assert_eq!(b.queued, Cycles::new(50));
    }

    #[test]
    fn ideal_matches_idle_send() {
        let mut n = ExternalNetwork::paper_default(2, freq());
        assert_eq!(n.ideal_latency(4096), n.send(0, 1, 4096, Cycles::ZERO));
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut n = ExternalNetwork::new(2, Cycles::new(10), 1.0);
        n.send(0, 1, 1000, Cycles::ZERO);
        n.reset();
        assert_eq!(n.message_count(), 0);
        assert_eq!(n.send(0, 1, 10, Cycles::ZERO), Cycles::new(20));
    }

    #[test]
    #[should_panic(expected = "server out of range")]
    fn out_of_range_server() {
        let mut n = ExternalNetwork::new(2, Cycles::new(10), 1.0);
        n.send(0, 5, 10, Cycles::ZERO);
    }
}
