//! Hand-computed hop-count and serialization anchors for all three
//! topologies plus the external network.
//!
//! These lock down the transit math the latency-provenance layer charges
//! to the `icn-transit` and `external-net` breakdown components: if a
//! routing or serialization change shifts any of these constants, the
//! measured breakdowns move with it and this suite points at the cause.

use um_net::{ExternalNetwork, FatTree, LeafSpine, Mesh2D, Network, NetworkConfig, Topology};
use um_sim::{Cycles, Frequency};

/// First-alternative chooser, equivalent to `um_net::topology::first_choice`.
fn first(_c: &[um_net::LinkId]) -> usize {
    0
}

// ---- 2D mesh ----

#[test]
fn mesh_line_transit_hand_computed() {
    // 4x1 line, 0 -> 3: 3 hops. 64 B on 8 B/cycle width-1 links is
    // 8 cycles serialization per hop, plus the 5-cycle hop latency.
    let mut net = Network::new(Mesh2D::new(4, 1), NetworkConfig::on_package());
    let tr = net.send_full(0, 3, 64, Cycles::ZERO);
    assert_eq!(tr.hops, 3);
    assert_eq!(tr.serialization, Cycles::new(3 * 8));
    assert_eq!(tr.queued, Cycles::ZERO);
    assert_eq!(tr.arrival, Cycles::new(3 * (8 + 5)));
}

#[test]
fn mesh_hops_is_manhattan_distance() {
    let m = Mesh2D::new(4, 4);
    // (0,0) -> (3,2): 3 + 2.
    assert_eq!(m.hops(0, 2 * 4 + 3), 5);
    assert_eq!(m.hops(5, 5), 0);
    assert_eq!(m.hops(0, 15), 6); // corner to corner
}

#[test]
fn mesh_hops_matches_route_everywhere() {
    let m = Mesh2D::new(4, 4);
    for src in 0..m.endpoints() {
        for dst in 0..m.endpoints() {
            let route = m.route(src, dst, &mut first);
            assert_eq!(route.len(), m.hops(src, dst), "{src}->{dst}");
        }
    }
}

// ---- binary fat tree ----

#[test]
fn fat_tree_sibling_and_cross_root_transit() {
    // 4-leaf tree, depth 2. Siblings 0 -> 1 meet at their parent: 2 hops
    // over width-1 leaf links; 64 B costs 8 cycles each.
    let mut net = Network::new(FatTree::new(4), NetworkConfig::on_package());
    let tr = net.send_full(0, 1, 64, Cycles::ZERO);
    assert_eq!(tr.hops, 2);
    assert_eq!(tr.serialization, Cycles::new(2 * 8));
    assert_eq!(tr.arrival, Cycles::new(2 * (8 + 5)));

    // 0 -> 3 crosses the root: leaf links (width 1, 8 cyc) at both ends,
    // root-adjacent links (width 2, 4 cyc) in the middle. Fresh network:
    // the sibling send above occupied 0's uplink.
    let mut net = Network::new(FatTree::new(4), NetworkConfig::on_package());
    let tr = net.send_full(0, 3, 64, Cycles::ZERO);
    assert_eq!(tr.hops, 4);
    assert_eq!(tr.serialization, Cycles::new(8 + 4 + 4 + 8));
    assert_eq!(tr.arrival, Cycles::new((8 + 4 + 4 + 8) + 4 * 5));
}

#[test]
fn fat_tree_width_cap_limits_root_serialization() {
    // 32 leaves, depth 5: uncapped doubling would make root links 16x,
    // but the default cap holds them at 8x.
    let t = FatTree::new(32);
    let route = t.route(0, 31, &mut first);
    let max_width = route
        .iter()
        .map(|&l| t.link_width(l))
        .fold(0.0f64, f64::max);
    assert_eq!(max_width, FatTree::DEFAULT_WIDTH_CAP);
}

#[test]
fn fat_tree_hops_matches_route_everywhere() {
    for leaves in [2usize, 4, 8, 32] {
        let t = FatTree::new(leaves);
        for src in 0..leaves {
            for dst in 0..leaves {
                let route = t.route(src, dst, &mut first);
                assert_eq!(route.len(), t.hops(src, dst), "{leaves}: {src}->{dst}");
            }
        }
    }
}

#[test]
fn fat_tree_hops_hand_computed() {
    let t = FatTree::new(8);
    assert_eq!(t.hops(0, 0), 0);
    assert_eq!(t.hops(0, 1), 2); // siblings
    assert_eq!(t.hops(0, 2), 4); // cousins
    assert_eq!(t.hops(0, 7), 6); // across the root of a depth-3 tree
}

// ---- hierarchical leaf-spine ----

#[test]
fn leaf_spine_transit_hand_computed() {
    // Paper default: 4 pods x 8 leaves. All links are width 1, so 64 B is
    // 8 cycles per hop. Intra-pod = 2 hops, cross-pod = 4 hops.
    let mut net = Network::new(LeafSpine::paper_default(), NetworkConfig::on_package());
    let intra = net.send_full(0, 7, 64, Cycles::ZERO);
    assert_eq!(intra.hops, 2);
    assert_eq!(intra.arrival, Cycles::new(2 * (8 + 5)));
    let cross = net.send_full(0, 31, 64, Cycles::ZERO);
    assert_eq!(cross.hops, 4);
    assert_eq!(cross.arrival, Cycles::new(4 * (8 + 5)));
}

#[test]
fn leaf_spine_hops_matches_route_everywhere() {
    let t = LeafSpine::paper_default();
    for src in 0..t.endpoints() {
        for dst in 0..t.endpoints() {
            let route = t.route(src, dst, &mut first);
            assert_eq!(route.len(), t.hops(src, dst), "{src}->{dst}");
        }
    }
}

#[test]
fn leaf_spine_hops_hand_computed() {
    let t = LeafSpine::paper_default();
    assert_eq!(t.hops(3, 3), 0);
    assert_eq!(t.hops(0, 7), 2); // both in pod 0
    assert_eq!(t.hops(7, 8), 4); // pod 0 -> pod 1
    assert_eq!(t.hops(0, 31), 4); // pod 0 -> pod 3
}

// ---- self-sends are uniform across topologies ----

#[test]
fn self_send_is_one_hop_latency_on_every_topology() {
    let cfg = NetworkConfig::on_package();
    let depart = Cycles::new(42);
    let expect = depart + cfg.hop_latency;
    let mut mesh = Network::new(Mesh2D::new(4, 4), cfg);
    let mut fat = Network::new(FatTree::new(8), cfg);
    let mut leaf = Network::new(LeafSpine::paper_default(), cfg);
    assert_eq!(mesh.send(3, 3, 4096, depart), expect);
    assert_eq!(fat.send(3, 3, 4096, depart), expect);
    assert_eq!(leaf.send(3, 3, 4096, depart), expect);
}

// ---- external (inter-server) network ----

#[test]
fn external_transit_hand_computed() {
    // Table 2 at 2 GHz: 0.5 us one-way = 1000 cycles, 200 GB/s = 100 B/cyc.
    let mut n = ExternalNetwork::paper_default(2, Frequency::ghz(2.0));
    let tr = n.send_traced(0, 1, 512, Cycles::ZERO);
    assert_eq!(tr.serialization, Cycles::new(6)); // ceil(512/100)
    assert_eq!(tr.propagation, Cycles::new(1000));
    assert_eq!(tr.queued, Cycles::ZERO);
    assert_eq!(tr.arrival, Cycles::new(1006));
    // A second message departing at the same instant queues behind the
    // first message's serialization.
    let tr2 = n.send_traced(0, 1, 512, Cycles::ZERO);
    assert_eq!(tr2.queued, Cycles::new(6));
    assert_eq!(tr2.arrival, Cycles::new(1012));
}
