//! `um-tidy` command-line entry point.
//!
//! ```text
//! cargo run -p um-tidy              # check the workspace rooted at cwd
//! cargo run -p um-tidy -- <root>    # check an explicit root
//! cargo run -p um-tidy -- --list-rules
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any rule fires, 2 on usage or
//! I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: um-tidy [--list-rules] [workspace-root]");
    eprintln!("checks every workspace .rs file against the determinism/invariant rules");
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list-rules" => {
                for rule in um_tidy::Rule::ALL {
                    println!("{:<24} {}", rule.id(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root: CARGO_MANIFEST_DIR/../.. when run via
    // `cargo run -p um-tidy`, else the current directory.
    let root = root.unwrap_or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|m| {
                Path::new(&m)
                    .ancestors()
                    .nth(2)
                    .map(Path::to_path_buf)
                    .unwrap_or_else(|| PathBuf::from("."))
            })
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    if !root.join("Cargo.toml").exists() {
        eprintln!("um-tidy: {} has no Cargo.toml", root.display());
        return ExitCode::from(2);
    }
    match um_tidy::check_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("um-tidy: clean ({} rules)", um_tidy::Rule::ALL.len());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("um-tidy: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("um-tidy: {e}");
            ExitCode::from(2)
        }
    }
}
