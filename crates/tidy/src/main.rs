//! `um-tidy` command-line entry point.
//!
//! ```text
//! cargo run -p um-tidy                     # check the workspace rooted at cwd
//! cargo run -p um-tidy -- --json           # machine-readable report (benchjson-compatible)
//! cargo run -p um-tidy -- --debt           # allow-debt ledger for results/tidy_debt.txt
//! cargo run -p um-tidy -- --rule-table     # markdown rule table embedded in DESIGN.md
//! cargo run -p um-tidy -- --list-rules
//! cargo run -p um-tidy -- --jobs 4 <root>  # parallel scan of an explicit root
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any rule fires, 2 on usage or
//! I/O errors. `--debt`, `--rule-table` and `--list-rules` always exit 0.
//! `--jobs N` never changes the output, only the wall time.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use um_tidy::{render_debt, render_json, rule_table, workspace_report, Rule};

enum Mode {
    Check,
    Json,
    Debt,
}

fn usage() {
    eprintln!("usage: um-tidy [--json | --debt | --rule-table | --list-rules] [--jobs N] [workspace-root]");
    eprintln!("checks every workspace .rs file against the determinism/invariant rules");
    eprintln!("  (no flag)     print diagnostics; exit 1 if any");
    eprintln!("  --json        full report (diagnostics + debt) as benchjson-compatible JSON");
    eprintln!("  --debt        allow-debt ledger; redirect to results/tidy_debt.txt");
    eprintln!("  --rule-table  markdown rule table; DESIGN.md embeds this verbatim");
    eprintln!("  --list-rules  rule ids with one-line summaries");
    eprintln!("  --jobs N      parallel file scanners (output is byte-identical at any N)");
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut jobs: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<24} {}", rule.id(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--rule-table" => {
                print!("{}", rule_table());
                return ExitCode::SUCCESS;
            }
            "--json" => mode = Mode::Json,
            "--debt" => mode = Mode::Debt,
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = n,
                _ => {
                    eprintln!("um-tidy: --jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if !arg.starts_with('-') && root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root: CARGO_MANIFEST_DIR/../.. when run via
    // `cargo run -p um-tidy`, else the current directory.
    let root = root.unwrap_or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|m| {
                Path::new(&m)
                    .ancestors()
                    .nth(2)
                    .map(Path::to_path_buf)
                    .unwrap_or_else(|| PathBuf::from("."))
            })
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    if !root.join("Cargo.toml").exists() {
        eprintln!("um-tidy: {} has no Cargo.toml", root.display());
        return ExitCode::from(2);
    }

    let report = match workspace_report(&root, jobs) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("um-tidy: {e}");
            return ExitCode::from(2);
        }
    };

    match mode {
        Mode::Debt => {
            print!("{}", render_debt(&report));
            ExitCode::SUCCESS
        }
        Mode::Json => {
            print!("{}", render_json(&report));
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Mode::Check => {
            if report.diagnostics.is_empty() {
                println!(
                    "um-tidy: clean ({} rules, {} files, {} lines, debt {})",
                    Rule::COUNT,
                    report.files,
                    report.lines,
                    report.total_debt()
                );
                ExitCode::SUCCESS
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                println!("um-tidy: {} violation(s)", report.diagnostics.len());
                ExitCode::FAILURE
            }
        }
    }
}
