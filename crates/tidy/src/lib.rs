//! `um-tidy`: the workspace's determinism-and-invariant static analysis
//! pass.
//!
//! The simulator's headline guarantees — bit-identical results at any
//! `UM_THREADS`, cycle-exact latency conservation — are only as strong as
//! the code's discipline about ordered iteration, seeded randomness and
//! overflow-safe cycle arithmetic. This crate enforces that discipline
//! statically, the way rust-lang/rust's `tidy` pass guards its tree: a
//! line-oriented scanner with a small, documented rule set, file:line
//! diagnostics, and an explicit escape hatch:
//!
//! ```text
//! // um-tidy: allow(unordered-container) -- iteration order never escapes
//! ```
//!
//! The directive goes on the offending line or the line directly above it,
//! and the `-- <reason>` justification is mandatory — an allow without a
//! reason is itself a violation.
//!
//! # Rules
//!
//! | Rule | Denies | Where |
//! |------|--------|-------|
//! | `unordered-container` | `HashMap`/`HashSet` (unordered iteration) | sim-state crates, non-test code |
//! | `wall-clock` | `Instant::now`, `SystemTime` | everywhere but `um-bench` |
//! | `unseeded-rng` | `thread_rng`, `from_entropy` | everywhere but `um-bench` |
//! | `cycle-trunc-cast` | `as u32`/`as usize`/… on cycle/latency values | non-test code |
//! | `cycle-float-cmp` | `==`/`!=` on float cycle/latency values | non-test code |
//! | `raw-fault-plan` | `FaultPlan::from_events` (bypasses the seeded builder) | outside `um-sim`, non-test code |
//! | `raw-binary-heap` | `BinaryHeap` for sim state (bypasses the pooled calendar queue) | sim-state crates outside the queue module, non-test code |
//! | `debug-macro` | `dbg!`, `todo!`, `unimplemented!` | non-test code |
//! | `ignore-without-reason` | bare `#[ignore]` | everywhere |
//! | `unsafe-without-safety` | `unsafe` without a `// SAFETY:` comment | everywhere |
//! | `allow-syntax` | malformed/unknown `um-tidy:` directives | everywhere |
//!
//! "Sim-state crates" are every `crates/*` member except `um-bench` (which
//! measures wall time by design) and `um-tidy` itself. Test code — files
//! under a `tests/` directory and everything at or below a file's first
//! `#[cfg(test)]` — is exempt from the rules that only protect simulation
//! state, because a test-local map whose iteration order never reaches an
//! assertion cannot break reproducibility.
//!
//! Matching is lexical: string literals and `//` comments are stripped
//! before rules run, so mentioning `HashMap` in a doc comment is fine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Every rule the pass knows, in diagnostic-id order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in sim-state code.
    UnorderedContainer,
    /// `Instant::now` / `SystemTime` outside `um-bench`.
    WallClock,
    /// `thread_rng` / `from_entropy` outside `um-bench`.
    UnseededRng,
    /// Truncating cast on a cycle/latency-named value.
    CycleTruncCast,
    /// Float equality on a cycle/latency-named value.
    CycleFloatCmp,
    /// `FaultPlan::from_events` outside `um-sim` (bypasses seeded builder).
    RawFaultPlan,
    /// `BinaryHeap` for sim state outside the queue module.
    RawBinaryHeap,
    /// `dbg!` / `todo!` / `unimplemented!` in non-test code.
    DebugMacro,
    /// `#[ignore]` without a reason string.
    IgnoreWithoutReason,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeWithoutSafety,
    /// Malformed or unknown `um-tidy:` directive.
    AllowSyntax,
}

impl Rule {
    /// All rules, for `--list-rules` and the allow-directive parser.
    pub const ALL: [Rule; 11] = [
        Rule::UnorderedContainer,
        Rule::WallClock,
        Rule::UnseededRng,
        Rule::CycleTruncCast,
        Rule::CycleFloatCmp,
        Rule::RawFaultPlan,
        Rule::RawBinaryHeap,
        Rule::DebugMacro,
        Rule::IgnoreWithoutReason,
        Rule::UnsafeWithoutSafety,
        Rule::AllowSyntax,
    ];

    /// The id used in diagnostics and `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedContainer => "unordered-container",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::CycleTruncCast => "cycle-trunc-cast",
            Rule::CycleFloatCmp => "cycle-float-cmp",
            Rule::RawFaultPlan => "raw-fault-plan",
            Rule::RawBinaryHeap => "raw-binary-heap",
            Rule::DebugMacro => "debug-macro",
            Rule::IgnoreWithoutReason => "ignore-without-reason",
            Rule::UnsafeWithoutSafety => "unsafe-without-safety",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// One-line description for `--list-rules` and the DESIGN.md table.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnorderedContainer => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet \
                 in sim-state code"
            }
            Rule::WallClock => {
                "wall-clock reads (Instant::now, SystemTime) break reproducibility; only \
                 um-bench may time things"
            }
            Rule::UnseededRng => {
                "entropy-seeded RNGs (thread_rng, from_entropy) break reproducibility; derive \
                 seeds via um_sim::rng"
            }
            Rule::CycleTruncCast => {
                "truncating casts on cycle/latency values silently wrap; use u64/u128 totals \
                 or checked/saturating conversions"
            }
            Rule::CycleFloatCmp => {
                "float equality on cycle/latency values is precision-dependent; compare in \
                 integer Cycles or use an epsilon"
            }
            Rule::RawFaultPlan => {
                "FaultPlan::from_events bypasses the seeded builder; construct plans with \
                 FaultPlan::builder(seed) so sweeps stay derive_seed-reproducible"
            }
            Rule::RawBinaryHeap => {
                "BinaryHeap pop order is O(log n) per event and its internal layout is not the \
                 simulator's delivery contract; future-event state goes through um_sim::EventQueue \
                 (the pooled calendar queue)"
            }
            Rule::DebugMacro => "dbg!/todo!/unimplemented! must not reach non-test code",
            Rule::IgnoreWithoutReason => "#[ignore] needs a reason string: #[ignore = \"why\"]",
            Rule::UnsafeWithoutSafety => "unsafe blocks need a // SAFETY: comment justifying them",
            Rule::AllowSyntax => {
                "um-tidy directives must be `// um-tidy: allow(<rule>) -- <reason>` with a \
                 known rule id and a nonempty reason"
            }
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

/// One finding: a rule violated at a file:line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Where a file sits in the workspace, deciding which rules apply.
#[derive(Clone, Debug)]
struct FileContext {
    /// `crates/<name>/…` member name, if any.
    krate: Option<String>,
    /// The whole file is test code (under a `tests/` directory).
    test_file: bool,
}

impl FileContext {
    fn from_path(rel_path: &str) -> Self {
        let norm = rel_path.replace('\\', "/");
        let krate = norm
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_owned);
        let test_file = norm.starts_with("tests/") || norm.contains("/tests/");
        Self { krate, test_file }
    }

    /// Sim-state crates: every workspace member under `crates/` except the
    /// bench harness (wall-clock by design) and this pass itself.
    fn is_sim_state_crate(&self) -> bool {
        matches!(&self.krate, Some(k) if k != "bench" && k != "tidy")
    }

    /// Wall-clock and entropy rules run everywhere except `um-bench`
    /// (Criterion interop) and this crate.
    fn bans_wall_clock(&self) -> bool {
        !matches!(&self.krate, Some(k) if k == "bench" || k == "tidy")
    }

    /// Raw fault-plan construction is banned outside `um-sim` (where the
    /// seeded builder lives and round-trips through `from_events` in its
    /// own tests) and this crate.
    fn bans_raw_fault_plan(&self) -> bool {
        !matches!(&self.krate, Some(k) if k == "sim" || k == "tidy")
    }
}

/// Splits a source line into code (string-literal contents stripped) and
/// the `//` comment tail, if any. Rules match against the code part;
/// `um-tidy:` directives are parsed from the comment part only, so a
/// diagnostic message mentioning the directive syntax in a string literal
/// is not itself a directive.
fn split_code_comment(line: &str) -> (String, Option<&str>) {
    let mut code = String::with_capacity(line.len());
    let mut in_string = false;
    let mut iter = line.char_indices().peekable();
    while let Some((at, c)) = iter.next() {
        if in_string {
            if c == '\\' {
                // Skip the escaped character entirely.
                iter.next();
            } else if c == '"' {
                in_string = false;
                code.push('"');
            }
            continue;
        }
        match c {
            '"' => {
                // A char literal like b'"' would confuse this; the rules
                // only need a best-effort strip and the workspace has no
                // such literals on rule-relevant lines.
                in_string = true;
                code.push('"');
            }
            '/' if iter.peek().map(|&(_, c2)| c2) == Some('/') => {
                return (code, Some(&line[at..]));
            }
            _ => code.push(c),
        }
    }
    (code, None)
}

/// Rule-matching view of a line: code only, strings and comments stripped.
#[cfg(test)]
fn clean_line(line: &str) -> String {
    split_code_comment(line).0
}

/// Whether `hay` contains `needle` as a standalone word (no identifier
/// character on either side).
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Whether the line mentions a cycle/latency-ish quantity.
fn names_cycles(cleaned_lower: &str) -> bool {
    cleaned_lower.contains("cycle") || cleaned_lower.contains("latency")
}

/// Whether the line contains float evidence: an `as f64`/`as f32` cast or
/// a floating-point literal (`digit . digit`).
fn has_float(cleaned: &str) -> bool {
    if cleaned.contains(" as f64") || cleaned.contains(" as f32") {
        return true;
    }
    let bytes = cleaned.as_bytes();
    bytes
        .windows(3)
        .any(|w| w[1] == b'.' && w[0].is_ascii_digit() && w[2].is_ascii_digit())
}

/// Parses every `um-tidy:` directive on a raw source line.
///
/// Returns the successfully parsed allowed rules and pushes `allow-syntax`
/// diagnostics for malformed ones.
fn parse_directives(
    raw: &str,
    path: &str,
    line_no: usize,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Rule> {
    let mut allowed = Vec::new();
    let mut search = 0;
    while let Some(pos) = raw[search..].find("um-tidy:") {
        let at = search + pos;
        let rest = &raw[at + "um-tidy:".len()..];
        search = at + "um-tidy:".len();
        let rest = rest.trim_start();
        if !rest.starts_with("allow") {
            // Prose mentioning "um-tidy:" (docs, this file) is not a
            // directive attempt; only `allow...` shapes are validated.
            continue;
        }
        let Some(args) = rest.strip_prefix("allow(") else {
            diags.push(Diagnostic {
                path: path.to_owned(),
                line: line_no,
                rule: Rule::AllowSyntax,
                message: "directive must be `um-tidy: allow(<rule>) -- <reason>`".into(),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            diags.push(Diagnostic {
                path: path.to_owned(),
                line: line_no,
                rule: Rule::AllowSyntax,
                message: "unterminated `allow(` directive".into(),
            });
            continue;
        };
        let ids = &args[..close];
        let tail = args[close + 1..].trim_start();
        let reason_ok = tail
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            diags.push(Diagnostic {
                path: path.to_owned(),
                line: line_no,
                rule: Rule::AllowSyntax,
                message: format!(
                    "allow({ids}) needs a justification: `-- <reason>` after the closing paren"
                ),
            });
            continue;
        }
        for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Rule::from_id(id) {
                Some(rule) => allowed.push(rule),
                None => diags.push(Diagnostic {
                    path: path.to_owned(),
                    line: line_no,
                    rule: Rule::AllowSyntax,
                    message: format!("unknown rule `{id}` in allow directive"),
                }),
            }
        }
    }
    allowed
}

/// Checks one file's source, returning diagnostics sorted by line.
///
/// `rel_path` decides which rules apply (crate membership, test files) and
/// appears verbatim in diagnostics.
pub fn check_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::from_path(rel_path);
    let path = rel_path.replace('\\', "/");
    let mut diags = Vec::new();
    let mut in_test = ctx.test_file;
    // Directives on their own comment line apply to the next code line.
    let mut pending_allows: Vec<Rule> = Vec::new();
    let lines: Vec<&str> = source.lines().collect();

    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let (cleaned, comment) = split_code_comment(raw);
        let line_allows = match comment {
            Some(c) => parse_directives(c, &path, line_no, &mut diags),
            None => Vec::new(),
        };
        let trimmed = raw.trim_start();
        if trimmed.starts_with("//") {
            // Pure comment line: its allows stack for the next code line.
            pending_allows.extend(line_allows);
            continue;
        }
        let mut allows = line_allows;
        allows.append(&mut pending_allows);

        if cleaned.contains("#[cfg(test)]") || cleaned.contains("#[cfg(all(test") {
            in_test = true;
        }

        let flag = |rule: Rule, message: String, diags: &mut Vec<Diagnostic>| {
            if !allows.contains(&rule) {
                diags.push(Diagnostic {
                    path: path.clone(),
                    line: line_no,
                    rule,
                    message,
                });
            }
        };

        // -- determinism rules ------------------------------------------
        if ctx.is_sim_state_crate()
            && !in_test
            && (contains_word(&cleaned, "HashMap") || contains_word(&cleaned, "HashSet"))
        {
            flag(
                Rule::UnorderedContainer,
                "unordered container in sim-state code: iteration order varies across runs; \
                 use BTreeMap/BTreeSet (or justify with an allow)"
                    .into(),
                &mut diags,
            );
        }
        if ctx.bans_wall_clock() {
            for pat in ["Instant::now", "SystemTime"] {
                if cleaned.contains(pat) {
                    flag(
                        Rule::WallClock,
                        format!(
                            "`{pat}` reads the wall clock: simulation results must depend only \
                             on the seed; only um-bench may time things"
                        ),
                        &mut diags,
                    );
                }
            }
            for pat in ["thread_rng", "from_entropy"] {
                if contains_word(&cleaned, pat) {
                    flag(
                        Rule::UnseededRng,
                        format!(
                            "`{pat}` seeds from OS entropy: derive a per-component stream from \
                             the master seed via um_sim::rng instead"
                        ),
                        &mut diags,
                    );
                }
            }
        }

        // -- event-queue provenance -------------------------------------
        // The calendar queue in crates/sim/src/queue.rs is the one place
        // allowed to own a future-event structure (it also hosts the
        // BinaryHeap reference baseline for differential tests).
        if ctx.is_sim_state_crate()
            && !in_test
            && path != "crates/sim/src/queue.rs"
            && contains_word(&cleaned, "BinaryHeap")
        {
            flag(
                Rule::RawBinaryHeap,
                "raw BinaryHeap for sim state: time-ordered event state must go through \
                 um_sim::EventQueue, which owns the (time, seq) FIFO delivery contract the \
                 determinism tests pin"
                    .into(),
                &mut diags,
            );
        }

        // -- fault-plan provenance --------------------------------------
        if ctx.bans_raw_fault_plan() && !in_test && contains_word(&cleaned, "from_events") {
            flag(
                Rule::RawFaultPlan,
                "raw fault-plan construction bypasses the seeded builder: use \
                 FaultPlan::builder(seed) so plans derive from the master seed and sweeps \
                 stay reproducible"
                    .into(),
                &mut diags,
            );
        }

        // -- cycle-arithmetic rules -------------------------------------
        if !in_test {
            let lower = cleaned.to_lowercase();
            if names_cycles(&lower) {
                for cast in [" as u32", " as usize", " as u16", " as u8"] {
                    if cleaned.contains(cast) {
                        flag(
                            Rule::CycleTruncCast,
                            format!(
                                "truncating `{}` on a cycle/latency value can silently wrap at \
                                 long horizons; accumulate in u64/u128 or use try_into/checked \
                                 conversions",
                                cast.trim_start()
                            ),
                            &mut diags,
                        );
                        break;
                    }
                }
                if (cleaned.contains("==") || cleaned.contains("!="))
                    && !cleaned.contains("==>")
                    && has_float(&cleaned)
                {
                    flag(
                        Rule::CycleFloatCmp,
                        "float equality on a cycle/latency value depends on rounding; compare \
                         integer Cycles or use an explicit tolerance"
                            .into(),
                        &mut diags,
                    );
                }
            }

            // -- hygiene: debug macros ----------------------------------
            for mac in ["dbg!", "todo!", "unimplemented!"] {
                // The '!' ends the identifier, so a plain substring match
                // with a left word-boundary suffices.
                if contains_word(&cleaned, &mac[..mac.len() - 1]) && cleaned.contains(mac) {
                    flag(
                        Rule::DebugMacro,
                        format!("`{mac}` must not reach non-test code"),
                        &mut diags,
                    );
                }
            }
        }

        // -- hygiene: bare #[ignore] ------------------------------------
        if cleaned.contains("#[ignore]") {
            flag(
                Rule::IgnoreWithoutReason,
                "give the skip a reason: `#[ignore = \"why\"]`".into(),
                &mut diags,
            );
        }

        // -- hygiene: unsafe without SAFETY -----------------------------
        if contains_word(&cleaned, "unsafe") && !cleaned.contains("forbid") {
            let documented = (idx.saturating_sub(3)..=idx).any(|i| lines[i].contains("SAFETY:"));
            if !documented {
                flag(
                    Rule::UnsafeWithoutSafety,
                    "unsafe needs a `// SAFETY:` comment on it or within the 3 lines above".into(),
                    &mut diags,
                );
            }
        }
    }
    diags
}

/// Recursively collects the workspace's own `.rs` files under `root`,
/// sorted for deterministic diagnostics.
///
/// Skips `vendor/` (third-party subsets), `target/`, `.git/`, and
/// `tests/fixtures/` trees (deliberate rule violations used as test data).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "vendor" | "target" | ".git") {
                    continue;
                }
                if name == "fixtures" && dir.ends_with("tests") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the whole pass over a workspace root, returning all diagnostics
/// sorted by path and line.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for file in collect_rs_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        diags.extend(check_source(&rel, &source));
    }
    diags.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_strips_comments_and_strings() {
        assert_eq!(clean_line("let x = 1; // HashMap here"), "let x = 1; ");
        assert_eq!(clean_line(r#"let s = "HashMap";"#), r#"let s = "";"#);
        assert_eq!(clean_line(r#"let s = "a\"b HashMap";"#), r#"let s = "";"#);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("forbid(unsafe_code)", "unsafe"));
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("my_thread_rng_like", "thread_rng"));
    }

    #[test]
    fn sim_state_crate_classification() {
        assert!(FileContext::from_path("crates/net/src/mesh.rs").is_sim_state_crate());
        assert!(!FileContext::from_path("crates/bench/src/lib.rs").is_sim_state_crate());
        assert!(!FileContext::from_path("crates/tidy/src/lib.rs").is_sim_state_crate());
        assert!(!FileContext::from_path("tests/determinism.rs").is_sim_state_crate());
        assert!(FileContext::from_path("crates/net/tests/transit_math.rs").test_file);
    }

    #[test]
    fn hashmap_flagged_only_outside_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let diags = check_source("crates/net/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].rule, Rule::UnorderedContainer);
    }

    #[test]
    fn allow_on_same_line_and_above() {
        let same = "use std::collections::HashMap; // um-tidy: allow(unordered-container) -- keyed lookups only\n";
        assert!(check_source("crates/net/src/x.rs", same).is_empty());
        let above = "// um-tidy: allow(unordered-container) -- keyed lookups only\nuse std::collections::HashMap;\n";
        assert!(check_source("crates/net/src/x.rs", above).is_empty());
    }

    #[test]
    fn allow_without_reason_rejected() {
        let src = "use std::collections::HashMap; // um-tidy: allow(unordered-container)\n";
        let diags = check_source("crates/net/src/x.rs", src);
        assert!(diags.iter().any(|d| d.rule == Rule::AllowSyntax));
        assert!(diags.iter().any(|d| d.rule == Rule::UnorderedContainer));
    }

    #[test]
    fn unknown_allow_rule_rejected() {
        let src = "let x = 1; // um-tidy: allow(no-such-rule) -- because\n";
        let diags = check_source("crates/net/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::AllowSyntax);
    }

    #[test]
    fn cycle_cast_needs_cycle_name() {
        let flagged = "let x = total_cycles as u32;\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", flagged)[0].rule,
            Rule::CycleTruncCast
        );
        let fine = "let x = index as usize;\n";
        assert!(check_source("crates/core/src/x.rs", fine).is_empty());
    }

    #[test]
    fn cycle_float_cmp_needs_float_evidence() {
        let flagged = "if latency_us == 0.0 {\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", flagged)[0].rule,
            Rule::CycleFloatCmp
        );
        let fine = "if cycles == other_cycles {\n";
        assert!(check_source("crates/core/src/x.rs", fine).is_empty());
    }

    #[test]
    fn wall_clock_allowed_in_bench() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(check_source("crates/bench/src/lib.rs", src).is_empty());
        assert_eq!(
            check_source("crates/sim/src/x.rs", src)[0].rule,
            Rule::WallClock
        );
        assert_eq!(check_source("src/lib.rs", src)[0].rule, Rule::WallClock);
    }

    #[test]
    fn ignore_needs_reason() {
        assert_eq!(
            check_source("tests/t.rs", "#[ignore]\n")[0].rule,
            Rule::IgnoreWithoutReason
        );
        assert!(check_source("tests/t.rs", "#[ignore = \"slow\"]\n").is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "unsafe { *p }\n";
        assert_eq!(
            check_source("crates/sim/src/x.rs", bad)[0].rule,
            Rule::UnsafeWithoutSafety
        );
        let good = "// SAFETY: p outlives the call\nunsafe { *p }\n";
        assert!(check_source("crates/sim/src/x.rs", good).is_empty());
        let forbid = "#![forbid(unsafe_code)]\n";
        assert!(check_source("crates/sim/src/x.rs", forbid).is_empty());
    }

    #[test]
    fn raw_fault_plan_flagged_outside_sim() {
        let src = "let plan = FaultPlan::from_events(7, events);\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", src)[0].rule,
            Rule::RawFaultPlan
        );
        // um-sim itself (builder internals, round-trip tests) is exempt,
        // as is test code anywhere.
        assert!(check_source("crates/sim/src/fault.rs", src).is_empty());
        assert!(check_source("tests/t.rs", src).is_empty());
    }

    #[test]
    fn raw_binary_heap_flagged_outside_queue_module() {
        let src = "use std::collections::BinaryHeap;\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", src)[0].rule,
            Rule::RawBinaryHeap
        );
        assert_eq!(
            check_source("crates/sim/src/fault.rs", src)[0].rule,
            Rule::RawBinaryHeap
        );
        // The queue module owns the future-event structure (and the heap
        // baseline); um-bench measures the baseline; tests model with it.
        assert!(check_source("crates/sim/src/queue.rs", src).is_empty());
        assert!(check_source("crates/bench/benches/engine.rs", src).is_empty());
        assert!(check_source("crates/sim/tests/queue_model.rs", src).is_empty());
    }

    #[test]
    fn debug_macros_flagged_outside_tests() {
        let src = "dbg!(x);\n";
        assert_eq!(
            check_source("crates/sim/src/x.rs", src)[0].rule,
            Rule::DebugMacro
        );
        assert!(check_source("tests/t.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_do_not_trip_rules() {
        let src = "/// Uses a HashMap-like structure; see Instant::now docs.\nlet x = 1;\n";
        assert!(check_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn rule_ids_roundtrip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
            assert!(!rule.summary().is_empty());
        }
        assert_eq!(Rule::from_id("nope"), None);
    }
}
