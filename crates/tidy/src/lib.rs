//! `um-tidy`: the workspace's determinism-and-invariant static analysis
//! pass.
//!
//! The simulator's headline guarantees — bit-identical results at any
//! `UM_THREADS`, cycle-exact latency conservation, seeded fault plans —
//! are only as strong as the code's discipline about ordered iteration,
//! seeded randomness and overflow-safe cycle arithmetic. This crate
//! enforces that discipline statically, the way rust-lang/rust's `tidy`
//! pass guards its tree, with file:line diagnostics and an explicit
//! escape hatch:
//!
//! ```text
//! // um-tidy: allow(unordered-container) -- iteration order never escapes
//! ```
//!
//! The directive goes on the offending line or the line directly above it,
//! and the `-- <reason>` justification is mandatory — an allow without a
//! reason is itself a violation. Every allow that actually suppresses a
//! diagnostic is *debt*, tracked per rule in the committed ledger
//! `results/tidy_debt.txt` (regenerate with `um-tidy --debt`); CI diffs
//! the ledger against a fresh run so debt can only grow through an
//! explicit, reviewed commit.
//!
//! # Architecture (v2)
//!
//! The original pass stripped strings and `//` comments one line at a
//! time, which cannot see a `/* ... */` spanning lines, a raw string
//! carrying `HashMap`, or `'a'` vs `'a`. v2 lexes every file fully
//! ([`lexer`]) into per-line code/comment views plus a token stream, and
//! tracks `#[cfg(test)]` scopes by brace nesting, so test exemptions end
//! where the test module ends. On top of the per-file rules sits a
//! *workspace* pass ([`check_files`] / [`workspace_report`]) for hazards
//! no single file shows — today that is `duplicate-seed-stream`, which
//! collects every string tag passed to `um_sim::rng::stream` /
//! `stream_indexed` across the tree and flags the same tag reused by
//! distinct files (two components sharing a tag draw *identical* random
//! streams). Files are scanned by a deterministic parallel worker pool;
//! diagnostics and the debt ledger are byte-stable regardless of thread
//! count or directory iteration order because every output is keyed on
//! the sorted workspace-relative path.
//!
//! `um-tidy --json` emits the full report as JSON whose rendering
//! matches `um_bench::benchjson` byte for byte (parse → render is the
//! identity), so the lint gate's output round-trips through the same
//! document model as the committed `BENCH_*.json` trajectories.
//!
//! # Rules
//!
//! See [`Rule`] (one variant per rule) or `um-tidy --list-rules`; the
//! table in DESIGN.md is generated from `um-tidy --rule-table` and CI
//! diffs the two so they cannot drift.
//!
//! "Sim-state crates" are every `crates/*` member except `um-bench`
//! (which measures wall time by design) and `um-tidy` itself. Test code —
//! files under a `tests/` directory and regions inside `#[cfg(test)]`
//! items — is exempt from the rules that only protect simulation state,
//! because a test-local map whose iteration order never reaches an
//! assertion cannot break reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lexer::{LineView, Tok};

/// Every rule the pass knows, in diagnostic-id order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in sim-state code.
    UnorderedContainer,
    /// `Instant::now` / `SystemTime` outside `um-bench`.
    WallClock,
    /// `thread_rng` / `from_entropy` outside `um-bench`.
    UnseededRng,
    /// Truncating cast on a cycle/latency-named value.
    CycleTruncCast,
    /// Float equality on a cycle/latency-named value.
    CycleFloatCmp,
    /// `FaultPlan::from_events` outside `um-sim` (bypasses seeded builder).
    RawFaultPlan,
    /// `BinaryHeap` for sim state outside the queue module.
    RawBinaryHeap,
    /// `dbg!` / `todo!` / `unimplemented!` in non-test code.
    DebugMacro,
    /// `#[ignore]` without a reason string.
    IgnoreWithoutReason,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeWithoutSafety,
    /// The same RNG stream tag constructed in two different files.
    DuplicateSeedStream,
    /// Order-dependent float accumulation (`+=` / `sum()`) in sim state.
    FloatAccumulation,
    /// Float sorts via `partial_cmp().unwrap()` / unstable float sorts.
    PartialCmpSort,
    /// Environment reads inside the deterministic sim core.
    EnvRead,
    /// async/tokio types inside the std-only sim core.
    AsyncInSim,
    /// Inline `SimConfig`/`ClusterConfig` literals in um-bench binaries.
    ScenarioInlineConfig,
    /// Raw simulator types (`SimConfig`, `SystemSim`, …) in um-serve.
    ServeRawConfig,
    /// Malformed or unknown `um-tidy:` directive.
    AllowSyntax,
}

impl Rule {
    /// All rules, for `--list-rules` and the allow-directive parser.
    pub const ALL: [Rule; 18] = [
        Rule::UnorderedContainer,
        Rule::WallClock,
        Rule::UnseededRng,
        Rule::CycleTruncCast,
        Rule::CycleFloatCmp,
        Rule::RawFaultPlan,
        Rule::RawBinaryHeap,
        Rule::DebugMacro,
        Rule::IgnoreWithoutReason,
        Rule::UnsafeWithoutSafety,
        Rule::DuplicateSeedStream,
        Rule::FloatAccumulation,
        Rule::PartialCmpSort,
        Rule::EnvRead,
        Rule::AsyncInSim,
        Rule::ScenarioInlineConfig,
        Rule::ServeRawConfig,
        Rule::AllowSyntax,
    ];

    /// Number of rules (the debt ledger has one row per rule).
    pub const COUNT: usize = Rule::ALL.len();

    /// Position of this rule in [`Rule::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The id used in diagnostics and `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedContainer => "unordered-container",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::CycleTruncCast => "cycle-trunc-cast",
            Rule::CycleFloatCmp => "cycle-float-cmp",
            Rule::RawFaultPlan => "raw-fault-plan",
            Rule::RawBinaryHeap => "raw-binary-heap",
            Rule::DebugMacro => "debug-macro",
            Rule::IgnoreWithoutReason => "ignore-without-reason",
            Rule::UnsafeWithoutSafety => "unsafe-without-safety",
            Rule::DuplicateSeedStream => "duplicate-seed-stream",
            Rule::FloatAccumulation => "float-accumulation",
            Rule::PartialCmpSort => "partial-cmp-sort",
            Rule::EnvRead => "env-read",
            Rule::AsyncInSim => "async-in-sim",
            Rule::ScenarioInlineConfig => "scenario-inline-config",
            Rule::ServeRawConfig => "serve-raw-config",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnorderedContainer => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet \
                 in sim-state code"
            }
            Rule::WallClock => {
                "wall-clock reads (Instant::now, SystemTime) break reproducibility; only \
                 um-bench may time things"
            }
            Rule::UnseededRng => {
                "entropy-seeded RNGs (thread_rng, from_entropy) break reproducibility; derive \
                 seeds via um_sim::rng"
            }
            Rule::CycleTruncCast => {
                "truncating casts on cycle/latency values silently wrap; use u64/u128 totals \
                 or checked/saturating conversions"
            }
            Rule::CycleFloatCmp => {
                "float equality on cycle/latency values is precision-dependent; compare in \
                 integer Cycles or use an epsilon"
            }
            Rule::RawFaultPlan => {
                "FaultPlan::from_events bypasses the seeded builder; construct plans with \
                 FaultPlan::builder(seed) so sweeps stay derive_seed-reproducible"
            }
            Rule::RawBinaryHeap => {
                "BinaryHeap pop order is O(log n) per event and its internal layout is not the \
                 simulator's delivery contract; future-event state goes through um_sim::EventQueue \
                 (the pooled calendar queue)"
            }
            Rule::DebugMacro => "dbg!/todo!/unimplemented! must not reach non-test code",
            Rule::IgnoreWithoutReason => "#[ignore] needs a reason string: #[ignore = \"why\"]",
            Rule::UnsafeWithoutSafety => "unsafe blocks need a // SAFETY: comment justifying them",
            Rule::DuplicateSeedStream => {
                "two components constructing um_sim::rng streams with the same tag draw \
                 identical random sequences; every component needs a unique stream tag"
            }
            Rule::FloatAccumulation => {
                "float += / sum() folds are order-dependent; a parallel or reordered reduction \
                 changes the result bit-for-bit — accumulate via um-stats sample sets or \
                 justify the fixed serial order"
            }
            Rule::PartialCmpSort => {
                "sort_by(partial_cmp().unwrap()) panics on NaN and unstable float sorts \
                 reorder ties nondeterministically; use total_cmp with a stable sort"
            }
            Rule::EnvRead => {
                "std::env reads inside the sim core make results depend on ambient process \
                 state; plumb configuration through typed configs from the driver layer"
            }
            Rule::AsyncInSim => {
                "async/tokio inside the sim core pulls executor scheduling into the \
                 deterministic kernel; even um-serve serves with std threads only"
            }
            Rule::ScenarioInlineConfig => {
                "inline SimConfig/ClusterConfig literals in um-bench binaries bypass the \
                 declarative scenario layer; express the experiment as a um_bench::scenario \
                 so it can be committed, validated and replayed as data"
            }
            Rule::ServeRawConfig => {
                "um-serve must speak the public um_bench::scenario API; raw \
                 SimConfig/SystemSim types in the service layer would let jobs drift from \
                 what um-sweep runs and break the byte-identical-results contract"
            }
            Rule::AllowSyntax => {
                "um-tidy directives must be `um-tidy: allow(<rule>) -- <reason>` with a \
                 known rule id and a nonempty reason"
            }
        }
    }

    /// What the rule denies — the DESIGN.md table's second column.
    pub fn denies(self) -> &'static str {
        match self {
            Rule::UnorderedContainer => "`HashMap`/`HashSet` (unordered iteration)",
            Rule::WallClock => "`Instant::now`, `SystemTime`",
            Rule::UnseededRng => "`thread_rng`, `from_entropy`",
            Rule::CycleTruncCast => "`as u32`/`as usize`/… on cycle/latency values",
            Rule::CycleFloatCmp => "`==`/`!=` on float cycle/latency values",
            Rule::RawFaultPlan => "`FaultPlan::from_events` (bypasses the seeded builder)",
            Rule::RawBinaryHeap => {
                "`BinaryHeap` for sim state (bypasses the pooled calendar queue)"
            }
            Rule::DebugMacro => "`dbg!`, `todo!`, `unimplemented!`",
            Rule::IgnoreWithoutReason => "bare `#[ignore]`",
            Rule::UnsafeWithoutSafety => "`unsafe` without a `// SAFETY:` comment",
            Rule::DuplicateSeedStream => {
                "one `rng::stream`/`stream_indexed` tag constructed in two files"
            }
            Rule::FloatAccumulation => "float `+=`/`sum()` (order-dependent reduction)",
            Rule::PartialCmpSort => "`sort_by(…partial_cmp…)`, `sort_unstable_by` on float keys",
            Rule::EnvRead => "`std::env::var` and friends",
            Rule::AsyncInSim => "`async`/`await`/`tokio` in the sim core",
            Rule::ScenarioInlineConfig => {
                "`SimConfig {`/`ClusterConfig {` literals (bypass the scenario layer)"
            }
            Rule::ServeRawConfig => {
                "`SimConfig`/`ClusterConfig`/`SystemSim`/`ClusterSim` (bypass the scenario API)"
            }
            Rule::AllowSyntax => "malformed/unknown `um-tidy:` directives",
        }
    }

    /// Where the rule applies — the DESIGN.md table's third column.
    pub fn applies_where(self) -> &'static str {
        match self {
            Rule::UnorderedContainer => "sim-state crates, non-test code",
            Rule::WallClock => "everywhere but `um-bench`",
            Rule::UnseededRng => "everywhere but `um-bench`",
            Rule::CycleTruncCast => "non-test code",
            Rule::CycleFloatCmp => "non-test code",
            Rule::RawFaultPlan => "outside `um-sim`, non-test code",
            Rule::RawBinaryHeap => "sim-state crates outside the queue module, non-test code",
            Rule::DebugMacro => "non-test code",
            Rule::IgnoreWithoutReason => "everywhere",
            Rule::UnsafeWithoutSafety => "everywhere",
            Rule::DuplicateSeedStream => "workspace-wide (cross-file), non-test code",
            Rule::FloatAccumulation => "sim-state crates except `um-stats`, non-test code",
            Rule::PartialCmpSort => "sim-state crates, non-test code",
            Rule::EnvRead => "sim-state crates, non-test code",
            Rule::AsyncInSim => "sim-state crates, non-test code",
            Rule::ScenarioInlineConfig => "`crates/bench/src/bin/`, non-test code",
            Rule::ServeRawConfig => "`crates/serve`, non-test code",
            Rule::AllowSyntax => "everywhere",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

/// The markdown rule table DESIGN.md embeds between
/// `<!-- um-tidy:rule-table:begin -->` / `end` markers; CI diffs the
/// committed table against this output.
pub fn rule_table() -> String {
    let mut out = String::from("| Rule | Denies | Where |\n|------|--------|-------|\n");
    for rule in Rule::ALL {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            rule.id(),
            rule.denies(),
            rule.applies_where()
        ));
    }
    out
}

/// One finding: a rule violated at a file:line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// The result of a whole-workspace (or multi-file) run: diagnostics plus
/// the allow-debt accounting the ledger and `--json` report render.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All diagnostics, sorted by (path, line).
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressed-diagnostic count per rule, indexed by [`Rule::index`].
    pub debt: Vec<usize>,
    /// Files scanned.
    pub files: usize,
    /// Source lines scanned.
    pub lines: usize,
}

impl Report {
    /// Total allow-debt across all rules.
    pub fn total_debt(&self) -> usize {
        self.debt.iter().sum()
    }
}

/// Where a file sits in the workspace, deciding which rules apply.
#[derive(Clone, Debug)]
struct FileContext {
    /// `crates/<name>/…` member name, if any.
    krate: Option<String>,
    /// The whole file is test code (under a `tests/` directory).
    test_file: bool,
}

impl FileContext {
    fn from_path(rel_path: &str) -> Self {
        let norm = rel_path.replace('\\', "/");
        let krate = norm
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_owned);
        let test_file = norm.starts_with("tests/") || norm.contains("/tests/");
        Self { krate, test_file }
    }

    /// Sim-state crates: every workspace member under `crates/` except the
    /// bench harness (wall-clock by design), the service layer (env-sized
    /// worker pool, outside the determinism boundary) and this pass itself.
    fn is_sim_state_crate(&self) -> bool {
        matches!(&self.krate, Some(k) if k != "bench" && k != "tidy" && k != "serve")
    }

    /// Wall-clock and entropy rules run everywhere except `um-bench`
    /// (Criterion interop), `um-serve` (throughput bench timing) and
    /// this crate.
    fn bans_wall_clock(&self) -> bool {
        !matches!(&self.krate, Some(k) if k == "bench" || k == "tidy" || k == "serve")
    }

    /// Raw fault-plan construction is banned outside `um-sim` (where the
    /// seeded builder lives and round-trips through `from_events` in its
    /// own tests) and this crate.
    fn bans_raw_fault_plan(&self) -> bool {
        !matches!(&self.krate, Some(k) if k == "sim" || k == "tidy")
    }

    /// Float accumulation is banned in sim-state crates except `um-stats`,
    /// whose whole job is exact, ordered sample-set folds.
    fn bans_float_accumulation(&self) -> bool {
        self.is_sim_state_crate() && !matches!(&self.krate, Some(k) if k == "stats")
    }

    /// Seed-stream tags are harvested everywhere except this crate (whose
    /// fixtures and messages mention tags deliberately).
    fn harvests_seed_streams(&self) -> bool {
        !matches!(&self.krate, Some(k) if k == "tidy")
    }
}

/// Whether a path is a um-bench binary — the driver layer the
/// `scenario-inline-config` rule fences. The scenario module itself
/// (`crates/bench/src/scenario.rs`) is the one place allowed to build
/// `SimConfig`/`ClusterConfig` literals from declarative specs; it lives
/// outside `src/bin/`, so a simple prefix check suffices.
fn is_bench_bin(path: &str) -> bool {
    path.starts_with("crates/bench/src/bin/")
}

/// Whether `hay` contains `needle` as a standalone word (no identifier
/// character on either side).
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Whether the line mentions a cycle/latency-ish quantity.
fn names_cycles(cleaned_lower: &str) -> bool {
    cleaned_lower.contains("cycle") || cleaned_lower.contains("latency")
}

/// Whether the line contains float evidence: an `as f64`/`as f32` cast or
/// a floating-point literal (`digit . digit`).
fn has_float(cleaned: &str) -> bool {
    if cleaned.contains(" as f64") || cleaned.contains(" as f32") {
        return true;
    }
    let bytes = cleaned.as_bytes();
    bytes
        .windows(3)
        .any(|w| w[1] == b'.' && w[0].is_ascii_digit() && w[2].is_ascii_digit())
}

/// Stronger float evidence for the accumulation rule: a float literal, a
/// float cast, or an `f64`/`f32` type mention.
fn has_float_type(cleaned: &str) -> bool {
    has_float(cleaned) || contains_word(cleaned, "f64") || contains_word(cleaned, "f32")
}

/// Whether the statement ending at line `idx` satisfies `pred` on any of
/// its lines. A statement is bounded above by a line whose code ends in
/// `;`, `{` or `}` (the previous statement/block), and the walk is capped
/// at 6 lines — enough for the workspace's formatted iterator chains.
fn statement_scan(lines: &[LineView], idx: usize, pred: impl Fn(&str) -> bool) -> bool {
    if pred(&lines[idx].code) {
        return true;
    }
    let mut i = idx;
    for _ in 0..6 {
        if i == 0 {
            break;
        }
        i -= 1;
        let code = lines[i].code.trim_end();
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            break;
        }
        if pred(&lines[i].code) {
            return true;
        }
    }
    false
}

/// Parses every `um-tidy:` directive in a line's comment text.
///
/// Returns the successfully parsed allowed rules and pushes `allow-syntax`
/// diagnostics for malformed ones.
fn parse_directives(
    raw: &str,
    path: &str,
    line_no: usize,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Rule> {
    let mut allowed = Vec::new();
    let mut search = 0;
    while let Some(pos) = raw[search..].find("um-tidy:") {
        let at = search + pos;
        let rest = &raw[at + "um-tidy:".len()..];
        search = at + "um-tidy:".len();
        let rest = rest.trim_start();
        if !rest.starts_with("allow") {
            // Prose mentioning "um-tidy:" (docs, this file) is not a
            // directive attempt; only `allow...` shapes are validated.
            continue;
        }
        let Some(args) = rest.strip_prefix("allow(") else {
            diags.push(Diagnostic {
                path: path.to_owned(),
                line: line_no,
                rule: Rule::AllowSyntax,
                message: "directive must be `um-tidy: allow(<rule>) -- <reason>`".into(),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            diags.push(Diagnostic {
                path: path.to_owned(),
                line: line_no,
                rule: Rule::AllowSyntax,
                message: "unterminated `allow(` directive".into(),
            });
            continue;
        };
        let ids = &args[..close];
        let tail = args[close + 1..].trim_start();
        let reason_ok = tail
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            diags.push(Diagnostic {
                path: path.to_owned(),
                line: line_no,
                rule: Rule::AllowSyntax,
                message: format!(
                    "allow({ids}) needs a justification: `-- <reason>` after the closing paren"
                ),
            });
            continue;
        }
        for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Rule::from_id(id) {
                Some(rule) => allowed.push(rule),
                None => diags.push(Diagnostic {
                    path: path.to_owned(),
                    line: line_no,
                    rule: Rule::AllowSyntax,
                    message: format!("unknown rule `{id}` in allow directive"),
                }),
            }
        }
    }
    allowed
}

/// Tracks `#[cfg(test)]` scopes by brace nesting: the exemption starts at
/// the attribute and ends at the closing brace of the item it gates (or
/// at the item's `;` for brace-less items), instead of extending to the
/// end of the file the way the v1 line scanner did.
#[derive(Default)]
struct TestScope {
    depth: usize,
    /// Brace depths at which an active `#[cfg(test)]` scope opened.
    open_at: Vec<usize>,
    /// A `#[cfg(test)]` attribute was seen and its item has not started.
    armed: bool,
}

impl TestScope {
    /// Whether the *upcoming* line is test-scoped, then folds the line's
    /// braces into the tracker.
    fn observe(&mut self, code: &str) -> bool {
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            self.armed = true;
        }
        let in_test = !self.open_at.is_empty() || self.armed;
        for c in code.chars() {
            match c {
                '{' => {
                    if self.armed {
                        self.open_at.push(self.depth);
                        self.armed = false;
                    }
                    self.depth += 1;
                }
                '}' => {
                    self.depth = self.depth.saturating_sub(1);
                    if self.open_at.last() == Some(&self.depth) {
                        self.open_at.pop();
                    }
                }
                // A brace-less gated item (`#[cfg(test)] use …;`) ends at
                // its semicolon.
                ';' => self.armed = false,
                _ => {}
            }
        }
        in_test
    }
}

/// One `rng::stream`/`stream_indexed` construction site, harvested for
/// the cross-file duplicate-tag pass.
#[derive(Clone, Debug)]
struct SeedSite {
    tag: String,
    line: usize,
    allowed: bool,
}

/// Everything one file contributes to a workspace run.
#[derive(Debug, Default)]
struct FileAnalysis {
    diags: Vec<Diagnostic>,
    seed_sites: Vec<SeedSite>,
    /// Suppressed diagnostics per rule, indexed by [`Rule::index`].
    used_allows: Vec<usize>,
    lines: usize,
}

fn analyze_source(rel_path: &str, source: &str) -> FileAnalysis {
    let ctx = FileContext::from_path(rel_path);
    let path = rel_path.replace('\\', "/");
    let lexed = lexer::lex(source);
    let mut out = FileAnalysis {
        used_allows: vec![0; Rule::COUNT],
        lines: lexed.lines.len(),
        ..FileAnalysis::default()
    };
    let mut scope = TestScope::default();
    // Directives on their own comment line apply to the next code line.
    let mut pending_allows: Vec<Rule> = Vec::new();
    // Per-line flags the token-level seed-stream harvest consults.
    let mut line_test = vec![false; lexed.lines.len()];
    let mut line_allows_dup = vec![false; lexed.lines.len()];

    for (idx, view) in lexed.lines.iter().enumerate() {
        let line_no = idx + 1;
        let cleaned = view.code.as_str();
        let line_allows = if view.comment.is_empty() {
            Vec::new()
        } else {
            parse_directives(&view.comment, &path, line_no, &mut out.diags)
        };
        let in_test = ctx.test_file || scope.observe(cleaned);
        line_test[idx] = in_test;
        if cleaned.trim().is_empty() && !view.comment.trim().is_empty() {
            // Pure comment line: its allows stack for the next code line.
            pending_allows.extend(line_allows);
            continue;
        }
        let mut allows = line_allows;
        allows.append(&mut pending_allows);
        line_allows_dup[idx] = allows.contains(&Rule::DuplicateSeedStream);

        let mut firings: Vec<(Rule, String)> = Vec::new();

        // -- determinism rules ------------------------------------------
        if ctx.is_sim_state_crate()
            && !in_test
            && (contains_word(cleaned, "HashMap") || contains_word(cleaned, "HashSet"))
        {
            firings.push((
                Rule::UnorderedContainer,
                "unordered container in sim-state code: iteration order varies across runs; \
                 use BTreeMap/BTreeSet (or justify with an allow)"
                    .into(),
            ));
        }
        if ctx.bans_wall_clock() {
            for pat in ["Instant::now", "SystemTime"] {
                if cleaned.contains(pat) {
                    firings.push((
                        Rule::WallClock,
                        format!(
                            "`{pat}` reads the wall clock: simulation results must depend only \
                             on the seed; only um-bench may time things"
                        ),
                    ));
                }
            }
            for pat in ["thread_rng", "from_entropy"] {
                if contains_word(cleaned, pat) {
                    firings.push((
                        Rule::UnseededRng,
                        format!(
                            "`{pat}` seeds from OS entropy: derive a per-component stream from \
                             the master seed via um_sim::rng instead"
                        ),
                    ));
                }
            }
        }

        // -- event-queue provenance -------------------------------------
        // The calendar queue in crates/sim/src/queue.rs is the one place
        // allowed to own a future-event structure (it also hosts the
        // BinaryHeap reference baseline for differential tests).
        if ctx.is_sim_state_crate()
            && !in_test
            && path != "crates/sim/src/queue.rs"
            && contains_word(cleaned, "BinaryHeap")
        {
            firings.push((
                Rule::RawBinaryHeap,
                "raw BinaryHeap for sim state: time-ordered event state must go through \
                 um_sim::EventQueue, which owns the (time, seq) FIFO delivery contract the \
                 determinism tests pin"
                    .into(),
            ));
        }

        // -- scenario-layer provenance ----------------------------------
        // Figure binaries describe experiments; the scenario layer builds
        // configs. An inline struct literal in a bin is an experiment CI
        // cannot validate, diff or replay from JSON.
        if is_bench_bin(&path) && !in_test {
            for pat in ["SimConfig {", "ClusterConfig {"] {
                // A function signature's `-> SimConfig {` opens a body,
                // not a struct literal.
                let is_literal = |code: &str| {
                    let mut from = 0;
                    while let Some(pos) = code[from..].find(pat) {
                        let at = from + pos;
                        if !code[..at].ends_with("-> ") {
                            return true;
                        }
                        from = at + pat.len();
                    }
                    false
                };
                if is_literal(cleaned) && contains_word(cleaned, pat.trim_end_matches(" {")) {
                    firings.push((
                        Rule::ScenarioInlineConfig,
                        format!(
                            "inline `{}` literal in a um-bench binary: build the experiment as \
                             a um_bench::scenario::Scenario (registry or JSON) and expand it, \
                             so the config list is committed, validated data",
                            pat.trim_end_matches(" {")
                        ),
                    ));
                }
            }
        }

        // -- service-layer provenance -----------------------------------
        // um-serve exists to serve scenarios, not to run simulators by
        // hand: jobs must go through the public um_bench::scenario API so
        // a served result can never diverge from a direct um-sweep run.
        if matches!(&ctx.krate, Some(k) if k == "serve") && !in_test {
            for ty in ["SimConfig", "ClusterConfig", "SystemSim", "ClusterSim"] {
                if contains_word(cleaned, ty) {
                    firings.push((
                        Rule::ServeRawConfig,
                        format!(
                            "raw `{ty}` in the service layer: um-serve must run jobs through \
                             um_bench::scenario (validate/expand/run), the same path um-sweep \
                             takes, so served results stay byte-identical to direct runs"
                        ),
                    ));
                }
            }
        }

        // -- fault-plan provenance --------------------------------------
        if ctx.bans_raw_fault_plan() && !in_test && contains_word(cleaned, "from_events") {
            firings.push((
                Rule::RawFaultPlan,
                "raw fault-plan construction bypasses the seeded builder: use \
                 FaultPlan::builder(seed) so plans derive from the master seed and sweeps \
                 stay reproducible"
                    .into(),
            ));
        }

        // -- cycle-arithmetic rules -------------------------------------
        if !in_test {
            let lower = cleaned.to_lowercase();
            if names_cycles(&lower) {
                for cast in [" as u32", " as usize", " as u16", " as u8"] {
                    if cleaned.contains(cast) {
                        firings.push((
                            Rule::CycleTruncCast,
                            format!(
                                "truncating `{}` on a cycle/latency value can silently wrap at \
                                 long horizons; accumulate in u64/u128 or use try_into/checked \
                                 conversions",
                                cast.trim_start()
                            ),
                        ));
                        break;
                    }
                }
                if (cleaned.contains("==") || cleaned.contains("!="))
                    && !cleaned.contains("==>")
                    && has_float(cleaned)
                {
                    firings.push((
                        Rule::CycleFloatCmp,
                        "float equality on a cycle/latency value depends on rounding; compare \
                         integer Cycles or use an explicit tolerance"
                            .into(),
                    ));
                }
            }

            // -- hygiene: debug macros ----------------------------------
            for mac in ["dbg!", "todo!", "unimplemented!"] {
                // The '!' ends the identifier, so a plain substring match
                // with a left word-boundary suffices.
                if contains_word(cleaned, &mac[..mac.len() - 1]) && cleaned.contains(mac) {
                    firings.push((
                        Rule::DebugMacro,
                        format!("`{mac}` must not reach non-test code"),
                    ));
                }
            }

            // -- determinism: float reductions --------------------------
            if ctx.bans_float_accumulation() {
                let fires = (cleaned.contains("+=")
                    && statement_scan(&lexed.lines, idx, has_float_type))
                    || cleaned.contains(".sum::<f64>")
                    || cleaned.contains(".sum::<f32>")
                    || (cleaned.contains(".sum()")
                        && statement_scan(&lexed.lines, idx, has_float_type));
                if fires {
                    firings.push((
                        Rule::FloatAccumulation,
                        "order-dependent float accumulation in sim state: a parallel or \
                         reordered reduction changes the sum bit-for-bit; fold through \
                         um-stats' exact sample sets or justify the fixed serial order with \
                         an allow"
                            .into(),
                    ));
                }
            }

            // -- determinism: float sorts -------------------------------
            if ctx.is_sim_state_crate() {
                let has_sort =
                    |code: &str| code.contains("sort_by") || code.contains("sort_unstable_by");
                let fires = (cleaned.contains("partial_cmp")
                    && statement_scan(&lexed.lines, idx, has_sort))
                    || (cleaned.contains("sort_unstable_by")
                        && statement_scan(&lexed.lines, idx, has_float_type));
                if fires {
                    firings.push((
                        Rule::PartialCmpSort,
                        "float sort via partial_cmp/unstable ordering: partial_cmp().unwrap() \
                         panics on NaN and unstable sorts reorder equal keys \
                         nondeterministically; use total_cmp with a stable sort"
                            .into(),
                    ));
                }
            }

            // -- service-layer fences -----------------------------------
            if ctx.is_sim_state_crate() {
                if cleaned.contains("env::var") || contains_word(cleaned, "var_os") {
                    firings.push((
                        Rule::EnvRead,
                        "environment read inside the deterministic sim core: results must be \
                         a function of typed configs and the seed, not ambient process state; \
                         read the environment in the driver layer and pass values down"
                            .into(),
                    ));
                }
                if contains_word(cleaned, "async")
                    || cleaned.contains(".await")
                    || contains_word(cleaned, "tokio")
                    || contains_word(cleaned, "async_std")
                {
                    firings.push((
                        Rule::AsyncInSim,
                        "async construct inside the std-only sim core: executor scheduling is \
                         nondeterministic; the service layer lives outside crates/* and talks \
                         to the kernel through its synchronous API"
                            .into(),
                    ));
                }
            }
        }

        // -- hygiene: bare #[ignore] ------------------------------------
        if cleaned.contains("#[ignore]") {
            firings.push((
                Rule::IgnoreWithoutReason,
                "give the skip a reason: `#[ignore = \"why\"]`".into(),
            ));
        }

        // -- hygiene: unsafe without SAFETY -----------------------------
        if contains_word(cleaned, "unsafe") && !cleaned.contains("forbid") {
            let documented =
                (idx.saturating_sub(3)..=idx).any(|i| lexed.lines[i].comment.contains("SAFETY:"));
            if !documented {
                firings.push((
                    Rule::UnsafeWithoutSafety,
                    "unsafe needs a `// SAFETY:` comment on it or within the 3 lines above".into(),
                ));
            }
        }

        for (rule, message) in firings {
            if allows.contains(&rule) {
                out.used_allows[rule.index()] += 1;
            } else {
                out.diags.push(Diagnostic {
                    path: path.clone(),
                    line: line_no,
                    rule,
                    message,
                });
            }
        }
    }

    // -- seed-stream harvest (token level, for the cross-file pass) -----
    if ctx.harvests_seed_streams() {
        let toks = &lexed.tokens;
        for (i, tok) in toks.iter().enumerate() {
            let Tok::Ident(name) = &tok.tok else { continue };
            if name != "stream" && name != "stream_indexed" {
                continue;
            }
            if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Open)) {
                continue;
            }
            // First string literal inside the call's own parens is the tag.
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Open => depth += 1,
                    Tok::Close => depth -= 1,
                    Tok::Str(s) if depth == 1 => {
                        let line = toks[j].line;
                        let at = line
                            .saturating_sub(1)
                            .min(line_test.len().saturating_sub(1));
                        if !ctx.test_file && !line_test.get(at).copied().unwrap_or(false) {
                            out.seed_sites.push(SeedSite {
                                tag: s.clone(),
                                line,
                                allowed: line_allows_dup.get(at).copied().unwrap_or(false),
                            });
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }

    out
}

/// Checks one file's source, returning diagnostics in line order.
///
/// `rel_path` decides which rules apply (crate membership, test files) and
/// appears verbatim in diagnostics. Cross-file rules (today:
/// `duplicate-seed-stream`) need [`check_files`] or [`workspace_report`];
/// a single file cannot collide with itself.
pub fn check_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    analyze_source(rel_path, source).diags
}

/// Runs the whole pass — per-file rules plus the cross-file workspace
/// rules — over an in-memory set of `(relative path, source)` files.
///
/// Inputs are sorted internally, so callers need not pre-sort; the
/// returned report is byte-stable for a given file set.
pub fn check_files(files: &[(String, String)]) -> Report {
    let mut sorted: Vec<&(String, String)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
    let analyses: Vec<(String, FileAnalysis)> = sorted
        .iter()
        .map(|(rel, src)| (rel.replace('\\', "/"), analyze_source(rel, src)))
        .collect();
    aggregate(analyses)
}

/// Folds per-file analyses (already in sorted path order) into a report,
/// running the cross-file rules.
fn aggregate(analyses: Vec<(String, FileAnalysis)>) -> Report {
    let mut report = Report {
        debt: vec![0; Rule::COUNT],
        files: analyses.len(),
        ..Report::default()
    };
    // tag -> sites as (path, line, allowed), in sorted-path order.
    let mut streams: BTreeMap<String, Vec<(String, usize, bool)>> = BTreeMap::new();
    for (path, analysis) in analyses {
        report.diagnostics.extend(analysis.diags);
        report.lines += analysis.lines;
        for (i, used) in analysis.used_allows.iter().enumerate() {
            report.debt[i] += used;
        }
        for site in analysis.seed_sites {
            streams
                .entry(site.tag)
                .or_default()
                .push((path.clone(), site.line, site.allowed));
        }
    }

    // -- cross-file: duplicate-seed-stream ------------------------------
    for (tag, sites) in &streams {
        let mut paths: Vec<&str> = sites.iter().map(|(p, _, _)| p.as_str()).collect();
        paths.dedup();
        if paths.len() < 2 {
            continue;
        }
        for (path, line, allowed) in sites {
            if *allowed {
                report.debt[Rule::DuplicateSeedStream.index()] += 1;
                continue;
            }
            let others: Vec<&str> = paths.iter().copied().filter(|p| p != path).collect();
            report.diagnostics.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: Rule::DuplicateSeedStream,
                message: format!(
                    "seed stream tag \"{tag}\" is also constructed in {}: components sharing \
                     a tag draw identical random sequences; give every component a unique tag",
                    others.join(", ")
                ),
            });
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    report
}

/// Recursively collects the workspace's own `.rs` files under `root`,
/// sorted by their workspace-relative path bytes so diagnostic order (and
/// with it the debt ledger) is identical across filesystems and directory
/// iteration orders.
///
/// Skips `vendor/` (third-party subsets), `target/`, `.git/`, and
/// `tests/fixtures/` trees (deliberate rule violations used as test data).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "vendor" | "target" | ".git") {
                    continue;
                }
                if name == "fixtures" && dir.ends_with("tests") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    // Sort by the *relative string* form (the form diagnostics print and
    // the ledger is keyed on), not PathBuf's component order, so output
    // is byte-stable everywhere.
    files.sort_by(|a, b| {
        let ka = a
            .strip_prefix(root)
            .unwrap_or(a)
            .to_string_lossy()
            .replace('\\', "/");
        let kb = b
            .strip_prefix(root)
            .unwrap_or(b)
            .to_string_lossy()
            .replace('\\', "/");
        ka.as_bytes().cmp(kb.as_bytes()).then_with(|| a.cmp(b))
    });
    Ok(files)
}

/// Runs the whole pass over a workspace root with `jobs` parallel file
/// scanners, returning the full report.
///
/// Parallelism never changes the output: files are claimed from a sorted
/// list, results land in their list slot, and aggregation walks slots in
/// order — `jobs = 1` and `jobs = 64` produce identical bytes.
///
/// # Errors
///
/// Propagates the first directory-walk or file-read error.
pub fn workspace_report(root: &Path, jobs: usize) -> std::io::Result<Report> {
    let entries: Vec<(PathBuf, String)> = collect_rs_files(root)?
        .into_iter()
        .map(|file| {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            (file, rel)
        })
        .collect();

    let jobs = jobs.max(1).min(entries.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<std::io::Result<FileAnalysis>>>> =
        entries.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((file, rel)) = entries.get(idx) else {
                    break;
                };
                let result =
                    std::fs::read_to_string(file).map(|source| analyze_source(rel, &source));
                *slots[idx].lock().expect("scanner slot poisoned") = Some(result);
            });
        }
    });

    let mut analyses = Vec::with_capacity(entries.len());
    for ((_, rel), slot) in entries.iter().zip(slots) {
        let result = slot
            .into_inner()
            .expect("scanner slot poisoned")
            .expect("every slot filled");
        analyses.push((rel.clone(), result?));
    }
    Ok(aggregate(analyses))
}

/// Runs the whole pass over a workspace root, returning all diagnostics
/// sorted by path and line (compatibility wrapper over
/// [`workspace_report`] with a single scanner thread).
///
/// # Errors
///
/// Propagates the first directory-walk or file-read error.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    Ok(workspace_report(root, 1)?.diagnostics)
}

/// Renders the committed debt ledger (`results/tidy_debt.txt`): one row
/// per rule counting diagnostics suppressed by allow directives, plus a
/// total. CI regenerates this and diffs it against the committed file, so
/// allow-debt growth is always an explicit, reviewed change.
pub fn render_debt(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("# um-tidy allow-directive debt ledger\n");
    out.push_str("# One row per rule: diagnostics suppressed by `um-tidy: allow(...)`\n");
    out.push_str("# directives in the live tree. CI diffs this file against a fresh run;\n");
    out.push_str("# debt may only change together with a regenerated, committed ledger.\n");
    out.push_str(
        "# Regenerate: cargo run --release -p um-tidy -- --debt > results/tidy_debt.txt\n",
    );
    for rule in Rule::ALL {
        out.push_str(&format!(
            "{:<24} {}\n",
            rule.id(),
            report.debt[rule.index()]
        ));
    }
    out.push_str(&format!("{:<24} {}\n", "total", report.total_debt()));
    out
}

/// Renders the report as JSON whose text round-trips *byte-exactly*
/// through `um_bench::benchjson` (`Json::parse(s).render() == s`): same
/// 2-space indentation, integer formatting and string escaping. The lint
/// gate stays zero-dependency while CI validates its output with the same
/// tooling as the committed `BENCH_*.json` files.
pub fn render_json(report: &Report) -> String {
    use jsonfmt::J;
    let violations = report
        .diagnostics
        .iter()
        .map(|d| {
            J::Obj(vec![
                ("path".into(), J::Str(d.path.clone())),
                ("line".into(), J::Num(d.line as f64)),
                ("rule".into(), J::Str(d.rule.id().into())),
                ("message".into(), J::Str(d.message.clone())),
            ])
        })
        .collect();
    let debt = Rule::ALL
        .iter()
        .map(|r| (r.id().to_string(), J::Num(report.debt[r.index()] as f64)))
        .collect();
    let doc = J::Obj(vec![
        ("tool".into(), J::Str("um-tidy".into())),
        ("rules".into(), J::Num(Rule::COUNT as f64)),
        ("files".into(), J::Num(report.files as f64)),
        ("lines".into(), J::Num(report.lines as f64)),
        (
            "violation_count".into(),
            J::Num(report.diagnostics.len() as f64),
        ),
        ("violations".into(), J::Arr(violations)),
        ("debt".into(), J::Obj(debt)),
        ("total_debt".into(), J::Num(report.total_debt() as f64)),
    ]);
    doc.render()
}

/// A minimal JSON emitter mirroring `um_bench::benchjson::Json::render`
/// exactly (2-space indent, `{n:.0}` integers, identical escapes), kept
/// here so the lint gate stays dependency-free. `crates/bench` round-trip
/// tests pin the byte equivalence.
mod jsonfmt {
    pub enum J {
        Num(f64),
        Str(String),
        Arr(Vec<J>),
        Obj(Vec<(String, J)>),
    }

    impl J {
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out, 0);
            out.push('\n');
            out
        }

        fn render_into(&self, out: &mut String, indent: usize) {
            match self {
                J::Num(n) => {
                    assert!(n.is_finite(), "cannot render non-finite number {n}");
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        out.push_str(&format!("{n:.0}"));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                }
                J::Str(s) => render_string(s, out),
                J::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        push_indent(out, indent + 1);
                        item.render_into(out, indent + 1);
                        out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                    }
                    push_indent(out, indent);
                    out.push(']');
                }
                J::Obj(pairs) => {
                    if pairs.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (key, value)) in pairs.iter().enumerate() {
                        push_indent(out, indent + 1);
                        render_string(key, out);
                        out.push_str(": ");
                        value.render_into(out, indent + 1);
                        out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                    }
                    push_indent(out, indent);
                    out.push('}');
                }
            }
        }
    }

    fn push_indent(out: &mut String, indent: usize) {
        for _ in 0..indent {
            out.push_str("  ");
        }
    }

    fn render_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_line(line: &str) -> String {
        lexer::lex(line).lines[0].code.clone()
    }

    #[test]
    fn clean_strips_comments_and_strings() {
        assert_eq!(clean_line("let x = 1; // HashMap here"), "let x = 1; ");
        assert_eq!(clean_line(r#"let s = "HashMap";"#), r#"let s = "";"#);
        assert_eq!(clean_line(r#"let s = "a\"b HashMap";"#), r#"let s = "";"#);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("forbid(unsafe_code)", "unsafe"));
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("my_thread_rng_like", "thread_rng"));
    }

    #[test]
    fn sim_state_crate_classification() {
        assert!(FileContext::from_path("crates/net/src/mesh.rs").is_sim_state_crate());
        assert!(!FileContext::from_path("crates/bench/src/lib.rs").is_sim_state_crate());
        assert!(!FileContext::from_path("crates/tidy/src/lib.rs").is_sim_state_crate());
        assert!(!FileContext::from_path("tests/determinism.rs").is_sim_state_crate());
        assert!(FileContext::from_path("crates/net/tests/transit_math.rs").test_file);
        assert!(!FileContext::from_path("crates/stats/src/samples.rs").bans_float_accumulation());
        assert!(FileContext::from_path("crates/core/src/system.rs").bans_float_accumulation());
    }

    #[test]
    fn hashmap_flagged_only_outside_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let diags = check_source("crates/net/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].rule, Rule::UnorderedContainer);
    }

    #[test]
    fn test_scope_ends_at_module_close() {
        // v1 treated everything after the first #[cfg(test)] as test code;
        // the nesting-aware tracker resumes linting after the close brace.
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\nuse std::collections::HashMap;\n";
        let diags = check_source("crates/net/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn braceless_cfg_test_item_scopes_one_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let diags = check_source("crates/net/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn block_comments_and_raw_strings_do_not_trip_rules() {
        let src = "/*\n  HashMap in a block comment\n*/\nlet s = r#\"HashMap in a raw string\"#;\nlet l: &'static str = \"x\";\n";
        assert!(check_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_on_same_line_and_above() {
        let same = "use std::collections::HashMap; // um-tidy: allow(unordered-container) -- keyed lookups only\n";
        assert!(check_source("crates/net/src/x.rs", same).is_empty());
        let above = "// um-tidy: allow(unordered-container) -- keyed lookups only\nuse std::collections::HashMap;\n";
        assert!(check_source("crates/net/src/x.rs", above).is_empty());
    }

    #[test]
    fn allow_without_reason_rejected() {
        let src = "use std::collections::HashMap; // um-tidy: allow(unordered-container)\n";
        let diags = check_source("crates/net/src/x.rs", src);
        assert!(diags.iter().any(|d| d.rule == Rule::AllowSyntax));
        assert!(diags.iter().any(|d| d.rule == Rule::UnorderedContainer));
    }

    #[test]
    fn unknown_allow_rule_rejected() {
        let src = "let x = 1; // um-tidy: allow(no-such-rule) -- because\n";
        let diags = check_source("crates/net/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::AllowSyntax);
    }

    #[test]
    fn cycle_cast_needs_cycle_name() {
        let flagged = "let x = total_cycles as u32;\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", flagged)[0].rule,
            Rule::CycleTruncCast
        );
        let fine = "let x = index as usize;\n";
        assert!(check_source("crates/core/src/x.rs", fine).is_empty());
    }

    #[test]
    fn cycle_float_cmp_needs_float_evidence() {
        let flagged = "if latency_us == 0.0 {\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", flagged)[0].rule,
            Rule::CycleFloatCmp
        );
        let fine = "if cycles == other_cycles {\n";
        assert!(check_source("crates/core/src/x.rs", fine).is_empty());
    }

    #[test]
    fn wall_clock_allowed_in_bench() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(check_source("crates/bench/src/lib.rs", src).is_empty());
        assert_eq!(
            check_source("crates/sim/src/x.rs", src)[0].rule,
            Rule::WallClock
        );
        assert_eq!(check_source("src/lib.rs", src)[0].rule, Rule::WallClock);
    }

    #[test]
    fn ignore_needs_reason() {
        assert_eq!(
            check_source("tests/t.rs", "#[ignore]\n")[0].rule,
            Rule::IgnoreWithoutReason
        );
        assert!(check_source("tests/t.rs", "#[ignore = \"slow\"]\n").is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "unsafe { *p }\n";
        assert_eq!(
            check_source("crates/sim/src/x.rs", bad)[0].rule,
            Rule::UnsafeWithoutSafety
        );
        let good = "// SAFETY: p outlives the call\nunsafe { *p }\n";
        assert!(check_source("crates/sim/src/x.rs", good).is_empty());
        let forbid = "#![forbid(unsafe_code)]\n";
        assert!(check_source("crates/sim/src/x.rs", forbid).is_empty());
    }

    #[test]
    fn safety_in_a_string_does_not_count() {
        let src = "let s = \"SAFETY: not a comment\";\nunsafe { *p }\n";
        assert_eq!(
            check_source("crates/sim/src/x.rs", src)[0].rule,
            Rule::UnsafeWithoutSafety
        );
    }

    #[test]
    fn raw_fault_plan_flagged_outside_sim() {
        let src = "let plan = FaultPlan::from_events(7, events);\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", src)[0].rule,
            Rule::RawFaultPlan
        );
        // um-sim itself (builder internals, round-trip tests) is exempt,
        // as is test code anywhere.
        assert!(check_source("crates/sim/src/fault.rs", src).is_empty());
        assert!(check_source("tests/t.rs", src).is_empty());
    }

    #[test]
    fn raw_binary_heap_flagged_outside_queue_module() {
        let src = "use std::collections::BinaryHeap;\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", src)[0].rule,
            Rule::RawBinaryHeap
        );
        assert_eq!(
            check_source("crates/sim/src/fault.rs", src)[0].rule,
            Rule::RawBinaryHeap
        );
        // The queue module owns the future-event structure (and the heap
        // baseline); um-bench measures the baseline; tests model with it.
        assert!(check_source("crates/sim/src/queue.rs", src).is_empty());
        assert!(check_source("crates/bench/benches/engine.rs", src).is_empty());
        assert!(check_source("crates/sim/tests/queue_model.rs", src).is_empty());
    }

    #[test]
    fn debug_macros_flagged_outside_tests() {
        let src = "dbg!(x);\n";
        assert_eq!(
            check_source("crates/sim/src/x.rs", src)[0].rule,
            Rule::DebugMacro
        );
        assert!(check_source("tests/t.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_do_not_trip_rules() {
        let src = "/// Uses a HashMap-like structure; see Instant::now docs.\nlet x = 1;\n";
        assert!(check_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_accumulation_flagged_in_sim_state() {
        let src = "total += delta as f64;\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", src)[0].rule,
            Rule::FloatAccumulation
        );
        // um-stats owns the exact sample sets; integer folds are fine.
        assert!(check_source("crates/stats/src/x.rs", src).is_empty());
        assert!(check_source("crates/core/src/x.rs", "count += 1;\n").is_empty());
        let turbo = "let s = xs.iter().sum::<f64>();\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", turbo)[0].rule,
            Rule::FloatAccumulation
        );
    }

    #[test]
    fn float_accumulation_sees_multiline_statements() {
        let src = "let extra: f64 = (1..=n)\n    .map(|k| p.powi(k))\n    .sum();\n";
        let diags = check_source("crates/workload/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::FloatAccumulation);
        assert_eq!(diags[0].line, 3);
        // An integer chain with the same shape stays clean.
        let int = "let n: u64 = (1..=n)\n    .map(|k| k * 2)\n    .sum();\n";
        assert!(check_source("crates/workload/src/x.rs", int).is_empty());
    }

    #[test]
    fn partial_cmp_sort_flagged() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(
            check_source("crates/stats/src/x.rs", src)[0].rule,
            Rule::PartialCmpSort
        );
        let unstable = "v.sort_unstable_by(|a, b| (a.0 as f64).total_cmp(&(b.0 as f64)));\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", unstable)[0].rule,
            Rule::PartialCmpSort
        );
        // A stable integer sort is fine, as is total_cmp without floats.
        assert!(check_source("crates/core/src/x.rs", "v.sort_by_key(|x| x.id);\n").is_empty());
        // partial_cmp alone (a PartialOrd impl) is not a sort.
        assert!(check_source(
            "crates/sim/src/x.rs",
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n"
        )
        .is_empty());
    }

    #[test]
    fn env_read_fenced_out_of_sim_core() {
        let src = "let v = std::env::var(\"UM_THREADS\");\n";
        assert_eq!(
            check_source("crates/core/src/x.rs", src)[0].rule,
            Rule::EnvRead
        );
        // The bench/driver layer and the lint itself read env by design.
        assert!(check_source("crates/bench/src/lib.rs", src).is_empty());
        assert!(check_source("crates/tidy/src/main.rs", src).is_empty());
        assert!(check_source("src/lib.rs", src).is_empty());
    }

    #[test]
    fn async_fenced_out_of_sim_core() {
        for src in [
            "pub async fn serve() {}\n",
            "let h = tokio::spawn(work());\n",
            "let v = fut.await;\n",
        ] {
            let diags = check_source("crates/sched/src/x.rs", src);
            assert_eq!(
                diags.first().map(|d| d.rule),
                Some(Rule::AsyncInSim),
                "{src}"
            );
        }
        assert!(check_source("crates/sched/src/x.rs", "let asynchrony = 1;\n").is_empty());
        assert!(check_source("src/service.rs", "pub async fn serve() {}\n").is_empty());
    }

    #[test]
    fn raw_sim_types_flagged_only_in_serve() {
        let diags = check_source(
            "crates/serve/src/service.rs",
            "let r = SystemSim::new(cfg).run();\n",
        );
        assert_eq!(diags.first().map(|d| d.rule), Some(Rule::ServeRawConfig));
        // The scenario layer, tests, and the rest of the workspace build
        // and run simulators by design.
        assert!(check_source("crates/serve/tests/service.rs", "SystemSim::new(cfg)\n").is_empty());
        assert!(check_source("crates/bench/src/scenario.rs", "SystemSim::new(cfg)\n").is_empty());
        // um-serve reading UM_THREADS for its pool size is outside the
        // sim-core env fence.
        assert!(check_source(
            "crates/serve/src/service.rs",
            "std::env::var(\"UM_THREADS\")\n"
        )
        .is_empty());
    }

    #[test]
    fn inline_config_flagged_only_in_bench_bins() {
        let sim = "SystemSim::new(SimConfig {\n";
        let cluster = "let c = ClusterConfig {\n";
        for src in [sim, cluster] {
            let diags = check_source("crates/bench/src/bin/x.rs", src);
            assert_eq!(
                diags.first().map(|d| d.rule),
                Some(Rule::ScenarioInlineConfig),
                "{src}"
            );
        }
        // The scenario module, the experiment layer and tests all build
        // configs by design; `..Default()` updates and net-config
        // literals are not experiment definitions.
        assert!(check_source("crates/bench/src/scenario.rs", sim).is_empty());
        assert!(check_source("crates/core/src/experiments/motivation.rs", sim).is_empty());
        assert!(check_source("crates/bench/tests/t.rs", sim).is_empty());
        for fine in [
            "..SimConfig::default()\n",
            "net: ClusterNetConfig {\n",
            "fn base() -> SimConfig {\n",
        ] {
            assert!(
                check_source("crates/bench/src/bin/x.rs", fine).is_empty(),
                "{fine}"
            );
        }
    }

    #[test]
    fn duplicate_seed_streams_flagged_across_files() {
        let files = vec![
            (
                "crates/net/src/a.rs".to_string(),
                "pub fn mk(seed: u64) { let _r = rng::stream(seed, \"fabric\"); }\n".to_string(),
            ),
            (
                "crates/sched/src/b.rs".to_string(),
                "pub fn mk(seed: u64) { let _r = rng::stream_indexed(seed, \"fabric\", 0); }\n"
                    .to_string(),
            ),
            (
                "crates/mem/src/c.rs".to_string(),
                "pub fn mk(seed: u64) { let _r = rng::stream(seed, \"unique\"); }\n".to_string(),
            ),
        ];
        let report = check_files(&files);
        assert_eq!(report.diagnostics.len(), 2, "{:?}", report.diagnostics);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.rule == Rule::DuplicateSeedStream));
        assert_eq!(report.diagnostics[0].path, "crates/net/src/a.rs");
        assert_eq!(report.diagnostics[1].path, "crates/sched/src/b.rs");
    }

    #[test]
    fn duplicate_seed_stream_same_file_and_tests_exempt() {
        let files = vec![
            (
                "crates/net/src/a.rs".to_string(),
                "pub fn mk(seed: u64) { let _a = rng::stream(seed, \"t\"); let _b = rng::stream(seed, \"t\"); }\n"
                    .to_string(),
            ),
            (
                "crates/net/tests/t.rs".to_string(),
                "fn mk(seed: u64) { let _r = rng::stream(seed, \"t\"); }\n".to_string(),
            ),
        ];
        assert!(check_files(&files).diagnostics.is_empty());
    }

    #[test]
    fn duplicate_seed_stream_allow_feeds_debt() {
        let files = vec![
            (
                "crates/net/src/a.rs".to_string(),
                "pub fn mk(seed: u64) { let _r = rng::stream(seed, \"shared\"); } // um-tidy: allow(duplicate-seed-stream) -- intentional shared stream\n"
                    .to_string(),
            ),
            (
                "crates/sched/src/b.rs".to_string(),
                "// um-tidy: allow(duplicate-seed-stream) -- intentional shared stream\npub fn mk(seed: u64) { let _r = rng::stream(seed, \"shared\"); }\n"
                    .to_string(),
            ),
        ];
        let report = check_files(&files);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.debt[Rule::DuplicateSeedStream.index()], 2);
    }

    #[test]
    fn used_allows_count_as_debt() {
        let files = vec![(
            "crates/net/src/a.rs".to_string(),
            "use std::collections::HashMap; // um-tidy: allow(unordered-container) -- keyed lookups only\n"
                .to_string(),
        )];
        let report = check_files(&files);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.debt[Rule::UnorderedContainer.index()], 1);
        assert_eq!(report.total_debt(), 1);
        // An allow that suppresses nothing is not debt.
        let unused = vec![(
            "crates/net/src/a.rs".to_string(),
            "let x = 1; // um-tidy: allow(unordered-container) -- nothing here\n".to_string(),
        )];
        assert_eq!(check_files(&unused).total_debt(), 0);
    }

    #[test]
    fn debt_ledger_renders_every_rule() {
        let report = check_files(&[]);
        let ledger = render_debt(&report);
        for rule in Rule::ALL {
            assert!(ledger.contains(rule.id()), "ledger misses {}", rule.id());
        }
        assert!(ledger.ends_with("total                    0\n"));
    }

    #[test]
    fn json_report_is_deterministic_and_complete() {
        let files = vec![(
            "crates/net/src/a.rs".to_string(),
            "use std::collections::HashMap;\n".to_string(),
        )];
        let report = check_files(&files);
        let a = render_json(&report);
        let b = render_json(&check_files(&files));
        assert_eq!(a, b);
        assert!(a.contains("\"unordered-container\""));
        assert!(a.contains("\"violation_count\": 1"));
    }

    #[test]
    fn rule_table_covers_all_rules() {
        let table = rule_table();
        for rule in Rule::ALL {
            assert!(table.contains(rule.id()), "table misses {}", rule.id());
        }
        assert_eq!(table.lines().count(), 2 + Rule::COUNT);
    }

    #[test]
    fn rule_ids_roundtrip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
            assert!(!rule.summary().is_empty());
            assert!(!rule.denies().is_empty());
            assert!(!rule.applies_where().is_empty());
        }
        assert_eq!(Rule::from_id("nope"), None);
        assert_eq!(Rule::ALL[Rule::AllowSyntax.index()], Rule::AllowSyntax);
    }
}
