//! A zero-dependency full-file Rust lexer for the lint pass.
//!
//! The original `um-tidy` stripped strings and `//` comments one line at
//! a time, which cannot see a `/* ... */` spanning lines, a raw string
//! carrying `HashMap` across its body, or the difference between the
//! lifetime `'a` and the char literal `'a'`. This module lexes the whole
//! file once and exposes two views of it:
//!
//! - [`Lexed::lines`]: per source line, the *code* text (string, char and
//!   raw-string contents blanked, comments removed) and the *comment*
//!   text (line and block comments, doc comments included). Rules match
//!   against the code view; `um-tidy:` directives and `SAFETY:` markers
//!   are parsed from the comment view, so neither can hide in the other.
//! - [`Lexed::tokens`]: a minimal token stream (identifiers, string
//!   literal contents, parentheses) for the cross-file passes that need
//!   to see *into* literals, e.g. harvesting the stream tags passed to
//!   `um_sim::rng::stream`.
//!
//! The lexer understands nested block comments, `r#"..."#` raw strings
//! with any number of hashes, byte strings/chars, escaped quotes, and
//! multi-line string literals. It never fails: malformed input degrades
//! to treating the remainder as code, which is the conservative choice
//! for a linter (better a spurious diagnostic than a silently skipped
//! file).

/// One source line, split into rule-matchable code and comment text.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LineView {
    /// The line's code with string/char literal contents blanked (the
    /// delimiting quotes are kept, so `"x"` becomes `""`) and comments
    /// replaced by a single space.
    pub code: String,
    /// Every comment character on the line — `//` tails and the slice of
    /// any `/* ... */` crossing it — concatenated.
    pub comment: String,
}

/// A token the cross-file passes care about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A string literal's decoded-enough content (escapes kept verbatim;
    /// the passes only compare literals to each other).
    Str(String),
    /// `(`
    Open,
    /// `)`
    Close,
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// The token itself.
    pub tok: Tok,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Per-line code/comment views, index 0 = line 1.
    pub lines: Vec<LineView>,
    /// Identifier/string/paren token stream in source order.
    pub tokens: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    lines: Vec<LineView>,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn line_no(&self) -> usize {
        self.lines.len()
    }

    fn code(&mut self) -> &mut String {
        &mut self.lines.last_mut().expect("one line always open").code
    }

    fn comment(&mut self) -> &mut String {
        &mut self.lines.last_mut().expect("one line always open").comment
    }

    fn newline(&mut self) {
        self.lines.push(LineView::default());
    }

    /// Consumes `//` to end of line (the newline itself is not consumed).
    fn line_comment(&mut self) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.comment().push_str(&text);
    }

    /// Consumes `/* ... */` with nesting; content goes to the comment
    /// view of every line it crosses, and a single space joins the code
    /// around it so word boundaries survive.
    fn block_comment(&mut self) {
        self.code().push(' ');
        let mut depth = 1usize;
        let mut text = String::from("/*");
        self.pos += 2;
        while depth > 0 {
            match self.peek(0) {
                None => break,
                Some('\n') => {
                    let t = std::mem::take(&mut text);
                    self.comment().push_str(&t);
                    self.newline();
                    self.pos += 1;
                }
                Some('/') if self.peek(1) == Some('*') => {
                    depth += 1;
                    text.push_str("/*");
                    self.pos += 2;
                }
                Some('*') if self.peek(1) == Some('/') => {
                    depth -= 1;
                    text.push_str("*/");
                    self.pos += 2;
                }
                Some(c) => {
                    text.push(c);
                    self.pos += 1;
                }
            }
        }
        self.comment().push_str(&text);
    }

    /// Consumes a normal (possibly byte) string literal starting at the
    /// opening quote. Multi-line bodies and `\"` escapes are handled; the
    /// code view keeps only the delimiting quotes.
    fn string(&mut self) {
        let start_line = self.line_no();
        self.code().push('"');
        self.pos += 1; // opening quote
        let mut content = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '"' => {
                    self.pos += 1;
                    self.code().push('"');
                    self.tokens.push(Token {
                        line: start_line,
                        tok: Tok::Str(content),
                    });
                    return;
                }
                '\\' => {
                    content.push('\\');
                    self.pos += 1;
                    if let Some(e) = self.peek(0) {
                        content.push(e);
                        self.pos += 1;
                        if e == '\n' {
                            // String continuation: `\` at end of line.
                            self.newline();
                        }
                    }
                }
                '\n' => {
                    content.push('\n');
                    self.pos += 1;
                    self.newline();
                }
                _ => {
                    content.push(c);
                    self.pos += 1;
                }
            }
        }
        // Unterminated: keep what we saw.
        self.tokens.push(Token {
            line: start_line,
            tok: Tok::Str(content),
        });
    }

    /// Consumes a raw string body after the prefix: `pos` is at the
    /// opening quote, `hashes` is the number of `#`s before it.
    fn raw_string(&mut self, hashes: usize) {
        let start_line = self.line_no();
        self.code().push('"');
        self.pos += 1; // opening quote
        let mut content = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    // A terminator needs `hashes` hashes after the quote.
                    let mut n = 0;
                    while n < hashes && self.peek(1 + n) == Some('#') {
                        n += 1;
                    }
                    if n == hashes {
                        self.pos += 1 + hashes;
                        self.code().push('"');
                        break;
                    }
                    content.push('"');
                    self.pos += 1;
                }
                Some('\n') => {
                    content.push('\n');
                    self.pos += 1;
                    self.newline();
                }
                Some(c) => {
                    content.push(c);
                    self.pos += 1;
                }
            }
        }
        self.tokens.push(Token {
            line: start_line,
            tok: Tok::Str(content),
        });
    }

    /// Disambiguates `'a` (lifetime: kept in the code view) from `'a'`
    /// and `'\n'` (char literals: blanked to `''`). `pos` is at the `'`.
    fn lifetime_or_char(&mut self) {
        match self.peek(1) {
            // Escaped char literal: '\n', '\'', '\u{1F600}', '\x41'.
            Some('\\') => {
                self.pos += 2;
                // Consume the escape payload up to the closing quote.
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                    if c == '\n' {
                        self.newline();
                    }
                }
                self.code().push_str("''");
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a / 'static (lifetime): scan the
                // identifier and look for a closing quote right after it.
                let mut len = 1;
                while self.peek(1 + len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(1 + len) == Some('\'') {
                    // Char literal like 'a' (multi-char forms are not
                    // valid Rust, but blanking them is still the safe
                    // reading for a linter).
                    self.pos += 2 + len;
                    self.code().push_str("''");
                } else {
                    // Lifetime or loop label: keep it verbatim.
                    let text: String = self.chars[self.pos..self.pos + 1 + len].iter().collect();
                    self.code().push_str(&text);
                    self.pos += 1 + len;
                }
            }
            // Char literal of a non-identifier char: '"', '+', ' ', ...
            Some(_) if self.peek(2) == Some('\'') => {
                self.pos += 3;
                self.code().push_str("''");
            }
            // Bare quote (malformed or macro-land): keep it as code.
            _ => {
                self.code().push('\'');
                self.pos += 1;
            }
        }
    }

    /// Consumes an identifier; if it is a string prefix (`r`, `b`, `br`)
    /// immediately followed by a (raw) string or byte-char literal, the
    /// literal is consumed too.
    fn ident(&mut self) {
        let start = self.pos;
        let start_line = self.line_no();
        let mut len = 1;
        while self.peek(len).is_some_and(is_ident_continue) {
            len += 1;
        }
        let text: String = self.chars[start..start + len].iter().collect();
        let next = self.peek(len);
        match (text.as_str(), next) {
            ("r" | "br", Some('"')) => {
                self.pos += len;
                self.raw_string(0);
            }
            ("r" | "br", Some('#')) => {
                let mut hashes = 0;
                while self.peek(len + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(len + hashes) == Some('"') {
                    self.pos += len + hashes;
                    self.raw_string(hashes);
                } else {
                    // `r#ident` raw identifier, or stray hashes: code.
                    self.code().push_str(&text);
                    self.tokens.push(Token {
                        line: start_line,
                        tok: Tok::Ident(text),
                    });
                    self.pos += len;
                }
            }
            ("b", Some('"')) => {
                self.pos += len;
                self.string();
            }
            ("b", Some('\'')) => {
                self.pos += len;
                self.lifetime_or_char();
            }
            _ => {
                self.code().push_str(&text);
                self.tokens.push(Token {
                    line: start_line,
                    tok: Tok::Ident(text),
                });
                self.pos += len;
            }
        }
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.newline();
                    self.pos += 1;
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.lifetime_or_char(),
                c if is_ident_start(c) => self.ident(),
                '(' => {
                    self.code().push('(');
                    let line = self.line_no();
                    self.tokens.push(Token {
                        line,
                        tok: Tok::Open,
                    });
                    self.pos += 1;
                }
                ')' => {
                    self.code().push(')');
                    let line = self.line_no();
                    self.tokens.push(Token {
                        line,
                        tok: Tok::Close,
                    });
                    self.pos += 1;
                }
                c => {
                    self.code().push(c);
                    self.pos += 1;
                }
            }
        }
        Lexed {
            lines: self.lines,
            tokens: self.tokens,
        }
    }
}

/// Lexes one file into per-line code/comment views and a token stream.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        lines: vec![LineView::default()],
        tokens: Vec::new(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_lines(src: &str) -> Vec<String> {
        lex(src).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comment_split() {
        let l = lex("let x = 1; // HashMap here");
        assert_eq!(l.lines[0].code, "let x = 1; ");
        assert_eq!(l.lines[0].comment, "// HashMap here");
    }

    #[test]
    fn string_contents_blanked_but_tokenized() {
        let l = lex(r#"let s = "HashMap";"#);
        assert_eq!(l.lines[0].code, r#"let s = "";"#);
        assert!(l.tokens.iter().any(|t| t.tok == Tok::Str("HashMap".into())));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        assert_eq!(
            code_lines(r#"let s = "a\"b HashMap";"#)[0],
            r#"let s = "";"#
        );
    }

    #[test]
    fn block_comment_spans_lines() {
        let src = "let a = 1;\n/* HashMap\n   Instant::now\n*/\nlet b = 2;";
        let lines = code_lines(src);
        assert_eq!(lines[0], "let a = 1;");
        assert!(!lines[1].contains("HashMap"));
        assert!(!lines[2].contains("Instant"));
        assert_eq!(lines[4], "let b = 2;");
        let l = lex(src);
        assert!(l.lines[1].comment.contains("HashMap"));
        assert!(l.lines[2].comment.contains("Instant::now"));
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        assert_eq!(code_lines(src)[0], "  let x = 1;");
    }

    #[test]
    fn raw_strings_hide_their_body() {
        let src = "let s = r#\"uses HashMap\ninside\"#; let t = 1;";
        let lines = code_lines(src);
        assert_eq!(lines[0], "let s = \"");
        assert_eq!(lines[1], "\"; let t = 1;");
        let l = lex(src);
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("HashMap"))));
    }

    #[test]
    fn raw_string_hash_counting() {
        // The `"#` inside is not a terminator for a two-hash raw string.
        let src = "let s = r##\"quote \"# here\"##; let x = 1;";
        assert_eq!(code_lines(src)[0], "let s = \"\"; let x = 1;");
    }

    #[test]
    fn lifetimes_survive_char_literals_blank() {
        assert_eq!(
            code_lines("fn f<'a>(x: &'a str) -> &'a str { x }")[0],
            "fn f<'a>(x: &'a str) -> &'a str { x }"
        );
        assert_eq!(code_lines("let c = 'x';")[0], "let c = '';");
        assert_eq!(
            code_lines("let q = '\"'; let h = HashMap;")[0],
            "let q = ''; let h = HashMap;"
        );
        assert_eq!(code_lines("let n = '\\n';")[0], "let n = '';");
        assert_eq!(code_lines("let u = '\\u{1F600}';")[0], "let u = '';");
    }

    #[test]
    fn a_char_literal_quote_does_not_open_a_string() {
        // The old per-line stripper treated the `'"'` as opening a string
        // and swallowed the rest of the line.
        let src = "let sep = '\"'; use std::collections::HashMap;";
        assert!(code_lines(src)[0].contains("HashMap"));
    }

    #[test]
    fn byte_literals() {
        assert_eq!(
            code_lines("let b = b\"bytes HashMap\";")[0],
            "let b = \"\";"
        );
        assert_eq!(code_lines("let c = b'x';")[0], "let c = '';");
    }

    #[test]
    fn multiline_string_with_continuation() {
        let src = "let s = \"line one \\\n  HashMap\";\nlet x = 1;";
        let lines = code_lines(src);
        assert!(!lines[0].contains("HashMap"));
        assert!(!lines[1].contains("HashMap"));
        assert_eq!(lines[2], "let x = 1;");
    }

    #[test]
    fn tokens_carry_lines_and_parens() {
        let l = lex("stream(seed,\n  \"arrivals\")");
        let kinds: Vec<&Tok> = l.tokens.iter().map(|t| &t.tok).collect();
        assert_eq!(
            kinds,
            vec![
                &Tok::Ident("stream".into()),
                &Tok::Open,
                &Tok::Ident("seed".into()),
                &Tok::Str("arrivals".into()),
                &Tok::Close,
            ]
        );
        assert_eq!(l.tokens[3].line, 2);
    }

    #[test]
    fn comment_inside_string_is_not_a_comment() {
        let l = lex("let s = \"// not a comment\"; let x = 1;");
        assert_eq!(l.lines[0].code, "let s = \"\"; let x = 1;");
        assert!(l.lines[0].comment.is_empty());
    }

    #[test]
    fn directive_in_string_is_not_in_comment_view() {
        let l = lex("let m = \"um-tidy: allow(wall-clock) -- nope\";");
        assert!(l.lines[0].comment.is_empty());
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("/* never closed");
        lex("let s = \"never closed");
        lex("let r = r#\"never closed");
        lex("let c = '");
    }
}
