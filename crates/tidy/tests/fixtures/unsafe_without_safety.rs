// Fixture: unsafe blocks with and without a SAFETY comment.
pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}

// SAFETY: the caller guarantees p is valid, aligned and live.
pub fn read_documented(p: *const u32) -> u32 {
    unsafe { *p }
}
