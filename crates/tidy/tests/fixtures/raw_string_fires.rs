//! The raw string must not mask the real import that follows it.
pub const EXAMPLE: &str = r#"use std::collections::HashMap; // not code"#;
use std::collections::HashMap;

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<&u32> {
    m.get(&k)
}
