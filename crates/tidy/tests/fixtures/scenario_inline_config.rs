//! Fixture: inline experiment configs in a um-bench binary.

/// A figure binary hand-building its config bypasses the scenario
/// layer: fires.
pub fn run_point(rps: f64) -> RunReport {
    SystemSim::new(SimConfig {
        machine: MachineConfig::umanycore(),
        rps_per_server: rps,
        ..SimConfig::default()
    })
    .run()
}

/// Same for the rack layer: fires.
pub fn rack(nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        ..ClusterConfig::default()
    }
}

/// A return type opening a body, a bare path expression: must not fire.
pub fn tweak(base: SimConfig) -> SimConfig {
    SimConfig::default()
}

/// The rack-fabric net config is a component knob, not an experiment
/// definition: must not fire.
pub fn jitter() -> ClusterNetConfig {
    ClusterNetConfig {
        jitter_us: None,
        ..ClusterNetConfig::default()
    }
}
