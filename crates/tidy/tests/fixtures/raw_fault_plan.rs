// Fixture: fault plans constructed outside the seeded builder.
pub fn plans() {
    let _raw = um_sim::fault::FaultPlan::from_events(7, vec![]);
    // um-tidy: allow(raw-fault-plan) -- serialization round-trip, events already seed-derived
    let _ok = um_sim::fault::FaultPlan::from_events(7, vec![]);
    let _seeded = um_sim::fault::FaultPlan::builder(7).build();
}
