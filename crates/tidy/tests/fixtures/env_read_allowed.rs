//! Fixture: a justified environment read.

/// Suppressed with a reason: counted as debt, no diagnostic.
pub fn quantum_us() -> u64 {
    // um-tidy: allow(env-read) -- knob only scales a report axis; merge is order-fixed
    match std::env::var("UM_QUANTUM_US") {
        Ok(v) => v.parse().unwrap_or(250),
        Err(_) => 250,
    }
}
