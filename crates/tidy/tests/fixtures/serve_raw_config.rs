//! Fixture: raw simulator types in the service layer.

/// A job handler running the simulator by hand bypasses the scenario
/// API: fires (twice — the config and the sim type).
pub fn run_job(rps: f64) -> RunReport {
    SystemSim::new(SimConfig {
        rps_per_server: rps,
        ..SimConfig::default()
    })
    .run()
}

/// Same for the rack layer: fires.
pub fn run_rack(cfg: ClusterConfig) -> ClusterReport {
    ClusterSim::new(cfg).run()
}

/// The scenario API is the sanctioned path: must not fire.
pub fn run_scenario(s: &um_bench::scenario::Scenario) -> Result<String, String> {
    um_bench::scenario::run(s).map(|out| out.text)
}
