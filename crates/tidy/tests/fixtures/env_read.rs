//! Fixture: ambient environment reads inside the sim core.

/// Results now depend on process state, not the seed: fires.
pub fn quantum_us() -> u64 {
    match std::env::var("UM_QUANTUM_US") {
        Ok(v) => v.parse().unwrap_or(250),
        Err(_) => 250,
    }
}

/// Mentioning the variable name in a string is fine: must not fire.
pub const QUANTUM_ENV: &str = "UM_QUANTUM_US";
