/* Multi-line header comment:
   the v1 line scanner lost track of this block and kept "linting"
   comment text while missing the real import below. */
use std::collections::HashMap; /* trailing block comment */

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<&u32> {
    m.get(&k)
}
