//! Fixture: async constructs inside the std-only sim core.

/// Executor scheduling is nondeterministic: fires.
pub async fn poll_links() -> u32 {
    0
}

/// Names that merely contain the word are fine: must not fire.
pub fn asynchrony_budget() -> u32 {
    1
}
