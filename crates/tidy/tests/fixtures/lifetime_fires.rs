//! `'a` is a lifetime, not an unterminated char literal: the v1 scanner
//! swallowed the rest of the line after it and missed the HashMap.
use std::collections::HashMap;

pub fn lookup<'a>(table: &'a HashMap<u32, u32>, key: u32) -> Option<&'a u32> {
    table.get(&key)
}
