// Fixture: the allow escape hatch, same-line and line-above forms.
use std::collections::HashMap; // um-tidy: allow(unordered-container) -- fixture: keyed lookups only, order never escapes

// um-tidy: allow(unordered-container) -- fixture: directive on the line above
use std::collections::HashSet;

pub fn cast(total_cycles: u64) -> u32 {
    // um-tidy: allow(cycle-trunc-cast) -- fixture: value bounded by config well below u32::MAX
    total_cycles as u32
}
