// Fixture: unordered containers in sim-state code.
use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::BTreeMap; // ordered: fine

pub fn state() {
    let _m: HashMap<u32, u32> = HashMap::new();
    let _ok: BTreeMap<u32, u32> = BTreeMap::new();
}

#[cfg(test)]
mod tests {
    // Test-local maps cannot break reproducibility.
    use std::collections::HashMap;

    #[test]
    fn counts() {
        let _c: HashMap<u32, u32> = HashMap::new();
    }
}
