//! Fixture: a justified raw simulator type in the service layer.

/// Suppressed with a reason: counted as debt, no diagnostic.
pub fn inspect(rps: f64) -> usize {
    // um-tidy: allow(serve-raw-config) -- diagnostics endpoint surfaces the expanded SimConfig list read-only
    let configs: Vec<SimConfig> = expand(rps);
    configs.len()
}
