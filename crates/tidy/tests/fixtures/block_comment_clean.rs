/*
 * Design notes spanning lines: a HashMap would reorder events here,
 * Instant::now() timing belongs in um-bench, and thread_rng would
 * unseed the run. None of this is code.
 */
/* nesting works too: /* inner HashMap mention */ still a comment */
pub fn nothing() {}
