// Fixture: time-ordered sim state kept in a raw BinaryHeap.
use std::collections::BinaryHeap;

pub struct Pending {
    deadlines: BinaryHeap<u64>,
}

pub fn track(p: &mut Pending) {
    // um-tidy: allow(raw-binary-heap) -- top-k scratch, order never reaches sim state
    let mut _scratch: BinaryHeap<u64> = BinaryHeap::new();
    p.deadlines.push(7);
}

#[cfg(test)]
mod tests {
    use std::collections::BinaryHeap;

    #[test]
    fn test_code_is_exempt() {
        let _model: BinaryHeap<u64> = BinaryHeap::new();
    }
}
