// Fixture: float equality on cycle/latency-named values.
pub fn compare(latency_us: f64, cycles: u64, other_cycles: u64) {
    if latency_us == 0.0 {
        return;
    }
    if cycles as f64 != other_cycles as f64 {
        return;
    }
    if cycles == other_cycles {
        // integer comparison: fine
    }
}
