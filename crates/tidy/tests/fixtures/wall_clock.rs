// Fixture: wall-clock reads in simulation code.
pub fn timestamps() {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
}
