//! Workspace fixture A: constructs the "fabric-hop" stream.
pub fn build(seed: u64) -> um_sim::rng::Rng {
    um_sim::rng::stream(seed, "fabric-hop")
}
