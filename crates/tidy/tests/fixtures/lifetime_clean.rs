//! Lifetimes and char literals coexist without confusing the lexer.
pub fn classify<'a>(keys: &'a [char]) -> &'a [char] {
    let _fallback = 'k';
    let _quote = '"';
    let _newline = '\n';
    let _unicode = '\u{1F600}';
    keys
}
