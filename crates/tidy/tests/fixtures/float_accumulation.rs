//! Fixture: order-dependent float reductions in sim-state code.

/// A serial mean written as an iterator fold: fires.
pub fn mean_service_us(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// An in-place float accumulator: fires.
pub fn total_weight(weights: &[u32]) -> f64 {
    let mut acc = 0.0;
    for w in weights {
        acc += *w as f64;
    }
    acc
}

/// Integer folds are exact under any order: must not fire.
pub fn total_events(counts: &[u64]) -> u64 {
    counts.iter().sum()
}
