//! Fixture: a justified async shim.

/// Suppressed with a reason: counted as debt, no diagnostic.
// um-tidy: allow(async-in-sim) -- compatibility shim; never awaited inside the kernel
pub async fn poll_links() -> u32 {
    0
}
