//! Raw strings carrying rule-tripping text are data, not code.
pub fn snippet() -> &'static str {
    r#"use std::collections::HashMap; // HashMap, Instant::now, thread_rng"#
}

pub fn hashed() -> &'static str {
    r##"nested "#quote#" and dbg!(x) inside"##
}
