//! Workspace fixture: a deliberately shared stream, justified.
pub fn build(seed: u64) -> um_sim::rng::Rng {
    // um-tidy: allow(duplicate-seed-stream) -- mirrored endpoints must draw one stream
    um_sim::rng::stream(seed, "mirror-pair")
}
