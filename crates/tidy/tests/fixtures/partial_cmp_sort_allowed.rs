//! Fixture: a justified float sort.

/// Suppressed with a reason: counted as debt, no diagnostic.
pub fn median(mut v: Vec<f64>) -> f64 {
    // um-tidy: allow(partial-cmp-sort) -- inputs validated NaN-free one line above
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}
