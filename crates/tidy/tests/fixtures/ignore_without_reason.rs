// Fixture: #[ignore] attributes without a reason.
#[ignore]
#[test]
fn skipped_silently() {}

#[ignore = "needs the full-scale results, ~40 min"]
#[test]
fn documented_skip() {}
