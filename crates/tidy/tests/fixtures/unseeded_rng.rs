// Fixture: entropy-seeded RNGs in simulation code.
pub fn rngs() {
    let _r = rand::thread_rng();
    let _s = rand::rngs::SmallRng::from_entropy();
}
