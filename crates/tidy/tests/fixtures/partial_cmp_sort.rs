//! Fixture: nondeterministic float sorts.

/// `partial_cmp().unwrap()` panics on NaN: fires.
pub fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Unstable sorts reorder equal float keys run-to-run: fires.
pub fn rank(pairs: &mut [(u32, f32)]) {
    pairs.sort_unstable_by(|a, b| (a.1 as f64).total_cmp(&(b.1 as f64)));
}

/// A stable integer key sort is deterministic: must not fire.
pub fn by_id(pairs: &mut [(u32, f32)]) {
    pairs.sort_by_key(|p| p.0);
}

/// A stable total_cmp sort is the sanctioned float sort: must not fire.
pub fn sanctioned(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}
