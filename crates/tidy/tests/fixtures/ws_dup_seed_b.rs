//! Workspace fixture B: reuses the same tag from another component.
pub fn build(seed: u64, lane: u64) -> um_sim::rng::Rng {
    um_sim::rng::stream_indexed(seed, "fabric-hop", lane)
}
