//! Fixture: the same reductions justified with allow directives.

/// Documented serial fold: suppressed, counted as debt.
pub fn mean_service_us(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64 // um-tidy: allow(float-accumulation) -- serial mean over a fixed-order sample slice
}

/// Same for the in-place accumulator.
pub fn total_weight(weights: &[u32]) -> f64 {
    let mut acc = 0.0;
    for w in weights {
        // um-tidy: allow(float-accumulation) -- fixed iteration order, report-only total
        acc += *w as f64;
    }
    acc
}
