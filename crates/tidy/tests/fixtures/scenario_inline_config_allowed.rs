//! Fixture: a justified inline config in an unconverted binary.

/// Suppressed with a reason: counted as debt, no diagnostic.
pub fn run_point(rps: f64) -> RunReport {
    // um-tidy: allow(scenario-inline-config) -- not yet converted to the scenario layer; tracked in results/tidy_debt.txt
    SystemSim::new(SimConfig {
        machine: MachineConfig::umanycore(),
        rps_per_server: rps,
        ..SimConfig::default()
    })
    .run()
}
