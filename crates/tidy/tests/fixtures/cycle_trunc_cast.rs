// Fixture: truncating casts on cycle/latency-named values.
pub fn report(total_cycles: u64, latency_sum: u64, index: u64) {
    let _ticks = total_cycles as u32;
    let _lat = latency_sum as u16;
    let _idx = index as usize; // not cycle-named: fine
}
