// Fixture: debug macros left in non-test code.
pub fn f(x: u32) -> u32 {
    dbg!(x);
    todo!()
}

pub fn g() {
    unimplemented!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        dbg!(42); // test code: fine
    }
}
