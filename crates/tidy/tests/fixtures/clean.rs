//! Fixture: nothing to report.
//!
//! Doc comments may mention HashMap, Instant::now and thread_rng freely;
//! matching is lexical but strings and comments are stripped first.

use std::collections::BTreeMap;

/// Sums the map's values ("HashMap" in a string is also fine).
pub fn sum(map: &BTreeMap<u32, u64>) -> u64 {
    let _s = "HashMap and SystemTime in a string literal";
    map.values().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn works() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u64);
        assert_eq!(super::sum(&m.into_iter().collect()), 2);
    }
}
