// Fixture: malformed um-tidy directives.
pub fn f() {
    let _x = 1; // um-tidy: allow -- missing the parenthesised rule list
    let _y = 2; // um-tidy: allow(unordered-container
    let _z = 3; // um-tidy: allow(unordered-container) missing the dashes
    let _w = 4; // um-tidy: allow(no-such-rule) -- misspelled rule id
}
