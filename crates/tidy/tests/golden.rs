//! Golden-file tests for the um-tidy rules.
//!
//! Each fixture under `tests/fixtures/` is checked with a *virtual*
//! workspace path (so crate-scoped rules apply as they would in the real
//! tree) and its rendered diagnostics must match `<name>.expected` byte
//! for byte. Regenerate the goldens after an intentional rule change with
//!
//! ```text
//! UM_TIDY_BLESS=1 cargo test -p um-tidy --test golden
//! ```

use std::path::{Path, PathBuf};

/// (fixture name, virtual workspace path it is checked under)
const CASES: &[(&str, &str)] = &[
    ("unordered_container", "crates/core/src/fixture.rs"),
    ("wall_clock", "crates/sim/src/fixture.rs"),
    ("unseeded_rng", "crates/workload/src/fixture.rs"),
    ("cycle_trunc_cast", "crates/core/src/fixture.rs"),
    ("cycle_float_cmp", "crates/stats/src/fixture.rs"),
    ("raw_fault_plan", "crates/core/src/fixture.rs"),
    ("raw_binary_heap", "crates/core/src/fixture.rs"),
    ("debug_macro", "crates/sched/src/fixture.rs"),
    ("ignore_without_reason", "tests/fixture.rs"),
    ("unsafe_without_safety", "crates/mem/src/fixture.rs"),
    ("allow_syntax", "crates/net/src/fixture.rs"),
    ("allow_escape", "crates/net/src/fixture.rs"),
    ("clean", "crates/arch/src/fixture.rs"),
];

/// Fixtures that must produce no diagnostics at all.
const CLEAN_CASES: &[&str] = &["allow_escape", "clean"];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn render(name: &str, virtual_path: &str) -> String {
    let src = std::fs::read_to_string(fixture_dir().join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("fixture {name}.rs: {e}"));
    um_tidy::check_source(virtual_path, &src)
        .iter()
        .map(|d| format!("{d}\n"))
        .collect()
}

#[test]
fn fixtures_match_goldens() {
    let bless = std::env::var_os("UM_TIDY_BLESS").is_some();
    let mut failures = Vec::new();
    for &(name, virtual_path) in CASES {
        let actual = render(name, virtual_path);
        let golden = fixture_dir().join(format!("{name}.expected"));
        if bless {
            std::fs::write(&golden, &actual).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("golden {name}.expected: {e} (bless with UM_TIDY_BLESS=1)"));
        if actual != expected {
            failures.push(format!(
                "== {name} ==\n-- expected --\n{expected}-- actual --\n{actual}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches (UM_TIDY_BLESS=1 regenerates):\n{}",
        failures.join("\n")
    );
}

#[test]
fn violation_fixtures_trip_their_namesake_rule() {
    for &(name, virtual_path) in CASES {
        let src = std::fs::read_to_string(fixture_dir().join(format!("{name}.rs"))).unwrap();
        let diags = um_tidy::check_source(virtual_path, &src);
        if CLEAN_CASES.contains(&name) {
            assert!(diags.is_empty(), "{name} must be clean, got: {diags:?}");
            continue;
        }
        let id = name.replace('_', "-");
        assert!(
            diags.iter().any(|d| d.rule.id() == id),
            "{name} must trip `{id}`, got: {diags:?}"
        );
    }
}

#[test]
fn every_rule_is_covered_by_a_fixture() {
    let covered: Vec<String> = CASES
        .iter()
        .filter(|(name, _)| !CLEAN_CASES.contains(name))
        .map(|(name, _)| name.replace('_', "-"))
        .collect();
    for rule in um_tidy::Rule::ALL {
        assert!(
            covered.iter().any(|id| id == rule.id()),
            "no fixture covers rule `{}`",
            rule.id()
        );
    }
}

#[test]
fn fixtures_are_excluded_from_the_workspace_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let files = um_tidy::collect_rs_files(root).expect("scan workspace");
    assert!(!files.is_empty(), "the scan must find workspace sources");
    assert!(
        files
            .iter()
            .all(|f| !f.to_string_lossy().contains("fixtures")),
        "fixture files must not reach the workspace scan"
    );
}
