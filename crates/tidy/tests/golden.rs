//! Golden-file tests for the um-tidy rules.
//!
//! Each fixture under `tests/fixtures/` is checked with a *virtual*
//! workspace path (so crate-scoped rules apply as they would in the real
//! tree) and its rendered diagnostics must match `<name>.expected` byte
//! for byte. Regenerate the goldens after an intentional rule change with
//!
//! ```text
//! UM_TIDY_BLESS=1 cargo test -p um-tidy --test golden
//! ```
//!
//! Besides one case per rule, the suite pins the v2 lexer against the
//! v1 line scanner's known misreads (multi-line block comments, raw
//! strings, lifetimes-vs-char-literals) with a firing and a non-firing
//! fixture each, exercises every new rule's allow escape hatch, runs the
//! cross-file `duplicate-seed-stream` pass over a fixture workspace, and
//! asserts the live tree itself is clean.

use std::path::{Path, PathBuf};

/// (fixture name, virtual workspace path, rule id it must trip — "" for
/// fixtures that must be completely clean)
const CASES: &[(&str, &str, &str)] = &[
    // one firing fixture per single-file rule
    (
        "unordered_container",
        "crates/core/src/fixture.rs",
        "unordered-container",
    ),
    ("wall_clock", "crates/sim/src/fixture.rs", "wall-clock"),
    (
        "unseeded_rng",
        "crates/workload/src/fixture.rs",
        "unseeded-rng",
    ),
    (
        "cycle_trunc_cast",
        "crates/core/src/fixture.rs",
        "cycle-trunc-cast",
    ),
    (
        "cycle_float_cmp",
        "crates/stats/src/fixture.rs",
        "cycle-float-cmp",
    ),
    (
        "raw_fault_plan",
        "crates/core/src/fixture.rs",
        "raw-fault-plan",
    ),
    (
        "raw_binary_heap",
        "crates/core/src/fixture.rs",
        "raw-binary-heap",
    ),
    ("debug_macro", "crates/sched/src/fixture.rs", "debug-macro"),
    (
        "ignore_without_reason",
        "tests/fixture.rs",
        "ignore-without-reason",
    ),
    (
        "unsafe_without_safety",
        "crates/mem/src/fixture.rs",
        "unsafe-without-safety",
    ),
    ("allow_syntax", "crates/net/src/fixture.rs", "allow-syntax"),
    (
        "float_accumulation",
        "crates/core/src/fixture.rs",
        "float-accumulation",
    ),
    (
        "partial_cmp_sort",
        "crates/stats/src/fixture.rs",
        "partial-cmp-sort",
    ),
    ("env_read", "crates/sched/src/fixture.rs", "env-read"),
    ("async_in_sim", "crates/net/src/fixture.rs", "async-in-sim"),
    (
        "scenario_inline_config",
        "crates/bench/src/bin/fixture.rs",
        "scenario-inline-config",
    ),
    (
        "serve_raw_config",
        "crates/serve/src/fixture.rs",
        "serve-raw-config",
    ),
    // allow escape hatches: suppressed diagnostics, zero output
    ("allow_escape", "crates/net/src/fixture.rs", ""),
    (
        "float_accumulation_allowed",
        "crates/core/src/fixture.rs",
        "",
    ),
    (
        "partial_cmp_sort_allowed",
        "crates/stats/src/fixture.rs",
        "",
    ),
    ("env_read_allowed", "crates/sched/src/fixture.rs", ""),
    ("async_in_sim_allowed", "crates/net/src/fixture.rs", ""),
    (
        "scenario_inline_config_allowed",
        "crates/bench/src/bin/fixture.rs",
        "",
    ),
    (
        "serve_raw_config_allowed",
        "crates/serve/src/fixture.rs",
        "",
    ),
    // v1 line-scanner misreads, pinned as lexer regressions
    (
        "block_comment_fires",
        "crates/core/src/fixture.rs",
        "unordered-container",
    ),
    ("block_comment_clean", "crates/core/src/fixture.rs", ""),
    (
        "raw_string_fires",
        "crates/sim/src/fixture.rs",
        "unordered-container",
    ),
    ("raw_string_clean", "crates/sim/src/fixture.rs", ""),
    (
        "lifetime_fires",
        "crates/mem/src/fixture.rs",
        "unordered-container",
    ),
    ("lifetime_clean", "crates/mem/src/fixture.rs", ""),
    ("clean", "crates/arch/src/fixture.rs", ""),
];

/// The cross-file pass needs two files; `check_source` cannot cover it.
const WS_DUP_SEED: &[(&str, &str)] = &[
    ("ws_dup_seed_a", "crates/net/src/fixture_a.rs"),
    ("ws_dup_seed_b", "crates/sched/src/fixture_b.rs"),
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read_fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_dir().join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("fixture {name}.rs: {e}"))
}

fn render(name: &str, virtual_path: &str) -> String {
    um_tidy::check_source(virtual_path, &read_fixture(name))
        .iter()
        .map(|d| format!("{d}\n"))
        .collect()
}

/// Compares rendered diagnostics against `<name>.expected`, blessing when
/// `UM_TIDY_BLESS` is set; returns a failure description otherwise.
fn match_golden(name: &str, actual: &str, bless: bool) -> Option<String> {
    let golden = fixture_dir().join(format!("{name}.expected"));
    if bless {
        std::fs::write(&golden, actual).expect("write golden");
        return None;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("golden {name}.expected: {e} (bless with UM_TIDY_BLESS=1)"));
    (actual != expected)
        .then(|| format!("== {name} ==\n-- expected --\n{expected}-- actual --\n{actual}"))
}

#[test]
fn fixtures_match_goldens() {
    let bless = std::env::var_os("UM_TIDY_BLESS").is_some();
    let mut failures = Vec::new();
    for &(name, virtual_path, _) in CASES {
        let actual = render(name, virtual_path);
        failures.extend(match_golden(name, &actual, bless));
    }
    assert!(
        failures.is_empty(),
        "golden mismatches (UM_TIDY_BLESS=1 regenerates):\n{}",
        failures.join("\n")
    );
}

#[test]
fn violation_fixtures_trip_their_expected_rule() {
    for &(name, virtual_path, rule_id) in CASES {
        let diags = um_tidy::check_source(virtual_path, &read_fixture(name));
        if rule_id.is_empty() {
            assert!(diags.is_empty(), "{name} must be clean, got: {diags:?}");
            continue;
        }
        assert!(
            diags.iter().any(|d| d.rule.id() == rule_id),
            "{name} must trip `{rule_id}`, got: {diags:?}"
        );
    }
}

#[test]
fn every_rule_is_covered_by_a_fixture() {
    let mut covered: Vec<&str> = CASES.iter().map(|&(_, _, rule)| rule).collect();
    covered.push("duplicate-seed-stream"); // the WS_DUP_SEED workspace case
    for rule in um_tidy::Rule::ALL {
        assert!(
            covered.contains(&rule.id()),
            "no fixture covers rule `{}`",
            rule.id()
        );
    }
}

#[test]
fn workspace_dup_seed_matches_golden() {
    let files: Vec<(String, String)> = WS_DUP_SEED
        .iter()
        .map(|&(name, virtual_path)| (virtual_path.to_string(), read_fixture(name)))
        .collect();
    let report = um_tidy::check_files(&files);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.rule.id() == "duplicate-seed-stream"),
        "only the cross-file rule may fire here, got: {:?}",
        report.diagnostics
    );
    let actual: String = report
        .diagnostics
        .iter()
        .map(|d| format!("{d}\n"))
        .collect();
    let bless = std::env::var_os("UM_TIDY_BLESS").is_some();
    if let Some(failure) = match_golden("ws_dup_seed", &actual, bless) {
        panic!("golden mismatch (UM_TIDY_BLESS=1 regenerates):\n{failure}");
    }
}

#[test]
fn workspace_dup_seed_allow_suppresses_both_sides() {
    // The same justified fixture mounted at two paths: a deliberately
    // shared stream stays clean only when *every* site carries the allow,
    // and each suppressed site lands in the debt ledger.
    let src = read_fixture("ws_dup_seed_allowed");
    let files = vec![
        ("crates/net/src/fixture_a.rs".to_string(), src.clone()),
        ("crates/sched/src/fixture_b.rs".to_string(), src),
    ];
    let report = um_tidy::check_files(&files);
    assert!(
        report.diagnostics.is_empty(),
        "allowed shared stream must be clean, got: {:?}",
        report.diagnostics
    );
    let dup = um_tidy::Rule::DuplicateSeedStream;
    assert_eq!(report.debt[dup.index()], 2, "both sites count as debt");
}

#[test]
fn allowed_fixtures_register_debt() {
    for &(name, virtual_path) in &[
        ("float_accumulation_allowed", "crates/core/src/fixture.rs"),
        ("partial_cmp_sort_allowed", "crates/stats/src/fixture.rs"),
        ("env_read_allowed", "crates/sched/src/fixture.rs"),
        ("async_in_sim_allowed", "crates/net/src/fixture.rs"),
        (
            "scenario_inline_config_allowed",
            "crates/bench/src/bin/fixture.rs",
        ),
        ("serve_raw_config_allowed", "crates/serve/src/fixture.rs"),
    ] {
        let files = vec![(virtual_path.to_string(), read_fixture(name))];
        let report = um_tidy::check_files(&files);
        assert!(report.diagnostics.is_empty(), "{name} must be clean");
        assert!(
            report.total_debt() > 0,
            "{name} must register suppressed diagnostics as debt"
        );
    }
}

#[test]
fn fixtures_are_excluded_from_the_workspace_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let files = um_tidy::collect_rs_files(root).expect("scan workspace");
    assert!(!files.is_empty(), "the scan must find workspace sources");
    assert!(
        files
            .iter()
            .all(|f| !f.to_string_lossy().contains("fixtures")),
        "fixture files must not reach the workspace scan"
    );
}

#[test]
fn workspace_scan_order_is_sorted_and_stable() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let files = um_tidy::collect_rs_files(root).expect("scan workspace");
    let rels: Vec<String> = files
        .iter()
        .map(|f| {
            f.strip_prefix(root)
                .expect("collected under root")
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect();
    let mut sorted = rels.clone();
    sorted.sort_by(|a, b| a.as_bytes().cmp(b.as_bytes()));
    assert_eq!(rels, sorted, "scan order must be byte-sorted rel paths");
}

#[test]
fn live_tree_is_clean_and_parallelism_does_not_change_the_report() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let serial = um_tidy::workspace_report(root, 1).expect("serial scan");
    assert!(
        serial.diagnostics.is_empty(),
        "the live tree must pass its own lint, got:\n{}",
        serial
            .diagnostics
            .iter()
            .map(|d| format!("{d}\n"))
            .collect::<String>()
    );
    let parallel = um_tidy::workspace_report(root, 8).expect("parallel scan");
    assert_eq!(
        um_tidy::render_json(&serial),
        um_tidy::render_json(&parallel),
        "jobs=1 and jobs=8 must render byte-identical reports"
    );
    assert_eq!(
        um_tidy::render_debt(&serial),
        um_tidy::render_debt(&parallel)
    );
}

#[test]
fn committed_debt_ledger_matches_live_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let report = um_tidy::workspace_report(root, 1).expect("scan workspace");
    let fresh = um_tidy::render_debt(&report);
    let committed = std::fs::read_to_string(root.join("results/tidy_debt.txt"))
        .expect("results/tidy_debt.txt must be committed");
    assert_eq!(
        committed, fresh,
        "debt ledger is stale: regenerate with \
         `cargo run --release -p um-tidy -- --debt > results/tidy_debt.txt`"
    );
}
