//! Property-based tests over the full-system simulator: invariants that
//! must hold for *any* configuration, not just the paper's points.

use proptest::prelude::*;
use um_arch::MachineConfig;
use umanycore::{SimConfig, SystemSim, Workload};

fn machine_strategy() -> impl Strategy<Value = MachineConfig> {
    prop_oneof![
        Just(MachineConfig::umanycore()),
        Just(MachineConfig::scaleout()),
        Just(MachineConfig::server_class_iso_power()),
        Just(MachineConfig::umanycore_heterogeneous(16)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full (small) simulation
        ..ProptestConfig::default()
    })]

    /// Every run conserves requests and produces sane statistics.
    #[test]
    fn run_invariants(
        machine in machine_strategy(),
        rps in 1_000.0f64..20_000.0,
        seed in 0u64..1_000,
        servers in 1usize..3,
    ) {
        let report = SystemSim::new(SimConfig {
            machine,
            workload: Workload::social_mix(),
            rps_per_server: rps,
            servers,
            horizon_us: 8_000.0,
            warmup_us: 800.0,
            seed,
            ..SimConfig::default()
        })
        .run();

        // Conservation: what we record is a subset of what completed
        // (completed counts child invocations of the call trees too).
        prop_assert!(report.recorded <= report.completed);
        let expected_roots = rps * 8_000.0 / 1e6 * servers as f64;
        // Recorded external requests track the Poisson arrival count.
        prop_assert!(
            (report.recorded as f64) < 3.0 * expected_roots + 50.0,
            "recorded {} vs expected roots {expected_roots}",
            report.recorded
        );
        // Trees average ~5 invocations and never exceed a few dozen.
        prop_assert!(
            (report.completed as f64) < 40.0 * expected_roots + 200.0,
            "completed {} vs expected roots {expected_roots}",
            report.completed
        );

        // Statistics sanity.
        prop_assert!((0.0..=1.0).contains(&report.utilization));
        prop_assert!(report.latency.p50 <= report.latency.p99);
        prop_assert!(report.latency.p99 <= report.latency.max);
        if report.recorded > 0 {
            // Nothing is faster than the client RTT floor.
            prop_assert!(
                report.latency_samples.min() >= 1.0,
                "latency below the 1us client RTT: {}",
                report.latency_samples.min()
            );
        }
        prop_assert!(report.queueing.p50 <= report.queueing.p99);
    }

    /// Queue-count overrides never lose requests (with or without
    /// stealing), across the whole sweep range.
    #[test]
    fn queue_overrides_conserve(
        queues_pow in 0u32..10,
        steal in proptest::bool::ANY,
        seed in 0u64..100,
    ) {
        let queues = 1usize << queues_pow; // 1..=512
        let report = SystemSim::new(SimConfig {
            machine: MachineConfig::scaleout(),
            workload: Workload::social_mix(),
            rps_per_server: 5_000.0,
            horizon_us: 6_000.0,
            warmup_us: 600.0,
            seed,
            queues_override: Some(queues),
            work_stealing: steal,
            ..SimConfig::default()
        })
        .run();
        prop_assert!(report.completed > 0);
        prop_assert!((0.0..=1.0).contains(&report.utilization));
    }

    /// The synthetic workloads obey the same invariants under every
    /// service-time family.
    #[test]
    fn synthetic_families(
        family in 0usize..3,
        mean in 20.0f64..500.0,
        seed in 0u64..100,
    ) {
        use um_workload::synthetic::SyntheticWorkload;
        use um_workload::ServiceTimeDist;
        let dist = match family {
            0 => ServiceTimeDist::exponential(mean),
            1 => ServiceTimeDist::lognormal_with_mean(mean, 2.0),
            _ => ServiceTimeDist::bimodal(mean / 1.9, mean * 10.0 / 1.9, 0.9),
        };
        let report = SystemSim::new(SimConfig {
            machine: MachineConfig::umanycore(),
            workload: Workload::Synthetic(SyntheticWorkload::new(dist, 2, 6)),
            rps_per_server: 10_000.0,
            horizon_us: 8_000.0,
            warmup_us: 800.0,
            seed,
            ..SimConfig::default()
        })
        .run();
        prop_assert!(report.completed > 0);
        prop_assert!(report.latency.mean > mean, "e2e must exceed service time");
    }
}
