//! Reproducibility guarantees: identical seeds produce identical results
//! across every stochastic component, and different seeds genuinely
//! differ.

use um_arch::MachineConfig;
use um_workload::apps::SocialNetwork;
use umanycore::{RunReport, SimConfig, SystemSim, Workload};

fn run(seed: u64, machine: MachineConfig) -> RunReport {
    SystemSim::new(SimConfig {
        machine,
        workload: Workload::social_mix(),
        rps_per_server: 8_000.0,
        horizon_us: 25_000.0,
        warmup_us: 2_500.0,
        seed,
        ..SimConfig::default()
    })
    .run()
}

#[test]
fn same_seed_bit_identical_reports() {
    for machine in [
        MachineConfig::umanycore(),
        MachineConfig::scaleout(),
        MachineConfig::server_class_iso_power(),
    ] {
        let a = run(1234, machine.clone());
        let b = run(1234, machine);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.recorded, b.recorded);
        assert_eq!(a.ctx_switches, b.ctx_switches);
        assert_eq!(a.icn_messages, b.icn_messages);
        assert_eq!(a.latency.mean.to_bits(), b.latency.mean.to_bits());
        assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
        assert_eq!(a.queueing.p99.to_bits(), b.queueing.p99.to_bits());
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(1, MachineConfig::umanycore());
    let b = run(2, MachineConfig::umanycore());
    assert_ne!(a.latency.mean.to_bits(), b.latency.mean.to_bits());
}

#[test]
fn per_app_workloads_are_deterministic() {
    let mk = || {
        SystemSim::new(SimConfig {
            machine: MachineConfig::umanycore(),
            workload: Workload::social_app(SocialNetwork::CPOST),
            rps_per_server: 4_000.0,
            horizon_us: 25_000.0,
            warmup_us: 2_500.0,
            seed: 77,
            ..SimConfig::default()
        })
        .run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
    assert_eq!(a.completed, b.completed);
}

#[test]
fn experiment_drivers_are_deterministic() {
    use umanycore::experiments::{motivation, Scale};
    let scale = Scale::quick();
    let a = motivation::fig7_rows(scale, &[10_000.0]);
    let b = motivation::fig7_rows(scale, &[10_000.0]);
    assert_eq!(a[0].mesh_norm_tail.to_bits(), b[0].mesh_norm_tail.to_bits());
    assert_eq!(
        a[0].fat_tree_norm_tail.to_bits(),
        b[0].fat_tree_norm_tail.to_bits()
    );
}
