//! Integration tests asserting the paper's headline *shapes* — who wins,
//! by roughly what factor, where crossovers fall — at reduced simulation
//! scales. These span every crate in the workspace.

use um_arch::MachineConfig;
use um_workload::apps::SocialNetwork;
use umanycore::experiments::{evaluation, motivation, Scale};
use umanycore::{SimConfig, SystemSim, Workload};

fn quick() -> Scale {
    Scale::quick()
}

/// Figure 14's core claim: uManycore's tail beats both baselines for
/// every application, and the gap is large.
#[test]
fn umanycore_tail_dominates_every_app() {
    let scale = Scale {
        horizon_us: 60_000.0,
        warmup_us: 6_000.0,
        ..quick()
    };
    for &root in &SocialNetwork::ALL {
        let row = evaluation::app_row(root, 10_000.0, scale);
        let (_, so, um) = row.norm_tails();
        assert!(
            um < 0.5,
            "{}: uManycore normalized tail {um} should be well below ServerClass",
            row.app
        );
        assert!(
            um < so,
            "{}: uManycore ({um}) must beat ScaleOut ({so})",
            row.app
        );
    }
}

/// Figure 14/16: uManycore's advantage grows with load.
#[test]
fn umanycore_advantage_grows_with_load() {
    let scale = Scale {
        horizon_us: 60_000.0,
        warmup_us: 6_000.0,
        ..quick()
    };
    let at = |rps: f64| {
        let row = evaluation::app_row(SocialNetwork::HOME_T, rps, scale);
        row.server_class.latency.p99 / row.umanycore.latency.p99
    };
    let low = at(5_000.0);
    let high = at(15_000.0);
    assert!(
        high > low,
        "tail advantage should grow with load: 5K {low}x vs 15K {high}x"
    );
}

/// Figure 15's ordering: each cumulative technique keeps or improves the
/// tail, and the full stack gives a large reduction.
#[test]
fn ablation_stages_are_cumulative() {
    let scale = Scale {
        horizon_us: 60_000.0,
        warmup_us: 6_000.0,
        ..quick()
    };
    let row = evaluation::fig15_row(SocialNetwork::SGRAPH, 15_000.0, scale);
    assert_eq!(row.reductions.len(), 4);
    let last = row.reductions[3];
    assert!(
        last > 3.0,
        "full uManycore should be >3x over ScaleOut, got {last}"
    );
    // The two hardware stages dominate the two organization stages.
    assert!(
        row.reductions[3] > row.reductions[1],
        "HW stages must add over the ICN stages: {:?}",
        row.reductions
    );
}

/// Figure 17: uManycore's tail-to-average ratio is substantially below
/// the software baselines'.
#[test]
fn tail_to_average_is_tamed() {
    let scale = Scale {
        horizon_us: 60_000.0,
        warmup_us: 6_000.0,
        ..quick()
    };
    let row = evaluation::app_row(SocialNetwork::USER, 10_000.0, scale);
    assert!(
        row.umanycore.tail_to_avg() < row.server_class.tail_to_avg(),
        "uManycore t/a {} vs ServerClass {}",
        row.umanycore.tail_to_avg(),
        row.server_class.tail_to_avg()
    );
}

/// Figure 6's crossover: sub-256-cycle context switches are near-free;
/// multi-thousand-cycle software switches blow the tail up at high load.
#[test]
fn context_switch_crossover() {
    // Saturation of the software scheduler needs time to accumulate
    // backlog; use a longer horizon than the other quick tests.
    let scale = Scale {
        horizon_us: 120_000.0,
        warmup_us: 12_000.0,
        ..quick()
    };
    let rows = motivation::fig6_rows(scale, &[50_000.0]);
    let at = |cs: u64| {
        rows.iter()
            .find(|r| r.cs_cycles == cs)
            .expect("swept value")
            .norm_tail
    };
    assert!(
        at(256) < 2.0,
        "256-cycle CS should be near-free: {}",
        at(256)
    );
    assert!(
        at(8192) > 5.0,
        "8K-cycle CS should devastate the 50K-RPS tail: {}",
        at(8192)
    );
    assert!(at(8192) > at(2048), "degradation grows with CS cost");
}

/// Figure 7: ICN contention matters at 50K RPS and the mesh suffers at
/// least as much as the fat tree.
#[test]
fn icn_contention_inflates_tails() {
    let scale = Scale {
        horizon_us: 40_000.0,
        warmup_us: 4_000.0,
        ..quick()
    };
    let rows = motivation::fig7_rows(scale, &[50_000.0]);
    let row = rows[0];
    assert!(
        row.mesh_norm_tail > 2.0,
        "mesh contention should inflate the 50K tail: {}",
        row.mesh_norm_tail
    );
    assert!(
        row.fat_tree_norm_tail > 1.5,
        "fat-tree contention should inflate the 50K tail: {}",
        row.fat_tree_norm_tail
    );
}

/// Figure 3's endpoints: a single fully shared queue is catastrophically
/// worse than the sweet spot, and work stealing rescues per-core queues.
#[test]
fn queue_structure_extremes() {
    // The single queue's lock saturation builds backlog over time; give
    // it room to show.
    let scale = Scale {
        horizon_us: 150_000.0,
        warmup_us: 15_000.0,
        ..quick()
    };
    let rows = motivation::fig3_rows(scale, 50_000.0);
    let best = rows.iter().map(|r| r.tail_us).fold(f64::INFINITY, f64::min);
    let single = rows.last().expect("has rows");
    assert_eq!(single.queues, 1);
    // Full-scale runs show ~2.6x (results/fig3.txt); at this reduced
    // horizon the lock backlog is smaller but must still be visible.
    assert!(
        single.tail_us > 1.25 * best,
        "single queue {} should clearly exceed the best {}",
        single.tail_us,
        best
    );
    let per_core = &rows[0];
    assert_eq!(per_core.queues, 1024);
    assert!(
        per_core.tail_steal_us <= per_core.tail_us * 1.1,
        "stealing should not hurt per-core queues: {} vs {}",
        per_core.tail_steal_us,
        per_core.tail_us
    );
}

/// §6.8: the iso-area 128-core ServerClass helps but cannot reach
/// uManycore, while burning ~3x the power.
#[test]
fn iso_area_comparison() {
    let scale = Scale {
        horizon_us: 60_000.0,
        warmup_us: 6_000.0,
        ..quick()
    };
    let rows = evaluation::iso_area_rows(scale, &[10_000.0]);
    let row = &rows[0];
    assert!(
        row.server_class_128_tail_us > 2.0 * row.umanycore_tail_us,
        "128-core ServerClass tail {} vs uManycore {}",
        row.server_class_128_tail_us,
        row.umanycore_tail_us
    );
    let um = MachineConfig::umanycore();
    let sc128 = MachineConfig::server_class_iso_area();
    let power_ratio = sc128.power_watts() / um.power_watts();
    assert!(
        (2.8..3.7).contains(&power_ratio),
        "power ratio {power_ratio}, paper 3.2x"
    );
}

/// The run-to-completion mode (Figure 3's setup) conserves requests.
#[test]
fn hold_core_mode_completes_everything() {
    let mut machine = MachineConfig::scaleout();
    machine.ctx_switch = um_sched::CtxSwitchModel::Custom(0);
    let report = SystemSim::new(SimConfig {
        machine,
        workload: Workload::Synthetic(um_workload::synthetic::SyntheticWorkload::new(
            um_workload::ServiceTimeDist::exponential(200.0),
            2,
            6,
        )),
        rps_per_server: 20_000.0,
        horizon_us: 30_000.0,
        warmup_us: 3_000.0,
        seed: 9,
        queues_override: Some(64),
        hold_core_while_blocked: true,
        ..SimConfig::default()
    })
    .run();
    // ~20K RPS for 30 ms = ~600 requests, all of which must complete.
    assert!(
        (400..800).contains(&(report.completed as usize)),
        "completed {}",
        report.completed
    );
}
