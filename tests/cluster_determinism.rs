//! Determinism of the cluster layer.
//!
//! The cluster simulator couples N per-node `SystemSim` instances
//! through one load balancer, and its determinism contract mirrors the
//! single-package one (`tests/fault_determinism.rs`): a
//! [`ClusterConfig`] fully determines the run, so any routing policy,
//! node count, arrival process, admission cap, autoscaling rule or
//! fault plan must be bit-identical across repeats and across
//! `UM_THREADS` worker-pool sizes; per-node seeds derived from the
//! cluster seed must keep distinct nodes (and distinct cluster seeds)
//! on distinct streams; and the latency breakdown — now including the
//! rack-level [`Component::ClusterHop`] — must still sum to the
//! end-to-end latency to the cycle.

use proptest::prelude::*;
use um_arch::{MachineConfig, TopologyShape};
use um_sim::fault::{FaultPlan, FaultWindow};
use um_sim::trace::Component;
use um_sim::Cycles;
use umanycore::cluster::{
    ClusterAutoscale, ClusterConfig, ClusterNetConfig, ClusterReport, ClusterSim, RoutingPolicy,
};
use umanycore::experiments::parallel::map_with_threads;
use umanycore::{ArrivalProcess, SimConfig};

const HORIZON_US: f64 = 4_000.0;

/// A deliberately small per-node package (16 cores) so ten proptest
/// cases' worth of multi-node racks stay affordable in debug builds.
fn tiny_node() -> SimConfig {
    SimConfig {
        machine: MachineConfig::umanycore_shaped(TopologyShape::new(2, 2, 4)),
        ..SimConfig::default()
    }
}

/// The routing policies the proptest sweeps, by index (proptest's
/// vendored build has no strategy for enums).
const ROUTINGS: [RoutingPolicy; 4] = [
    RoutingPolicy::Random,
    RoutingPolicy::RoundRobin,
    RoutingPolicy::JsqD { d: 2 },
    RoutingPolicy::CentralQueue,
];

/// The optional cluster features a proptest case toggles.
#[derive(Clone, Copy)]
struct Knobs {
    /// MMPP instead of Poisson arrivals.
    bursty: bool,
    /// Per-node admission cap (excess queues at the load balancer).
    cap: bool,
    /// Straggler-aware steering around fault-degraded nodes.
    steer: bool,
    /// Autoscaling from half the rack with fast boots.
    autoscale: bool,
    /// A village fail-slow fault plan.
    slow: bool,
}

impl Knobs {
    /// Everything off: the plain Poisson rack.
    const OFF: Knobs = Knobs {
        bursty: false,
        cap: false,
        steer: false,
        autoscale: false,
        slow: false,
    };
}

/// A small rack shaped by the proptest inputs: 1–4 nodes, ~0.65
/// utilization per node, plus whatever `knobs` turns on.
fn rack(nodes: usize, routing: RoutingPolicy, knobs: Knobs, seed: u64) -> ClusterConfig {
    let Knobs {
        bursty,
        cap,
        steer,
        autoscale,
        slow,
    } = knobs;
    let node = tiny_node();
    let freq = node.machine.core.frequency;
    let fault_plan = if slow {
        FaultPlan::builder(seed ^ 0x5eed)
            .fail_slow_every_village(
                1,
                node.machine.shape.total_villages(),
                3,
                FaultWindow::new(Cycles::ZERO, Cycles::from_micros(HORIZON_US, freq), 5.0),
            )
            .build()
    } else {
        FaultPlan::default()
    };
    ClusterConfig {
        node,
        nodes,
        rps_per_node: 20_000.0,
        arrivals: if bursty {
            ArrivalProcess::Bursty
        } else {
            ArrivalProcess::Poisson
        },
        horizon_us: HORIZON_US,
        warmup_us: 400.0,
        seed,
        routing,
        max_in_flight: cap.then_some(24),
        steer,
        autoscale: autoscale.then(|| ClusterAutoscale {
            initial_nodes: nodes.div_ceil(2),
            hi_inflight_per_node: 8.0,
            boot_us: 500.0,
        }),
        net: ClusterNetConfig::default(),
        fault_plan,
        ..ClusterConfig::default()
    }
}

/// The report fields a determinism check compares, bit-exactly.
fn fingerprint(r: &ClusterReport) -> (u64, u64, u64, u64, u64, Vec<u64>, usize, u64) {
    (
        r.latency.p99.to_bits(),
        r.latency.mean.to_bits(),
        r.cluster_hop.mean.to_bits(),
        r.completed,
        r.recorded,
        r.dispatched_per_node.clone(),
        r.peak_lb_queue,
        r.events,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case runs full cluster simulations at two pool sizes
        ..ProptestConfig::default()
    })]

    /// Any rack configuration is bit-identical across repeats and
    /// across `UM_THREADS` pool sizes, and conserves latency.
    #[test]
    fn cluster_runs_are_bit_identical_across_threads(
        routing_idx in 0usize..4,
        nodes in 1usize..5,
        bursty in proptest::bool::ANY,
        cap in proptest::bool::ANY,
        steer in proptest::bool::ANY,
        autoscale in proptest::bool::ANY,
        slow in proptest::bool::ANY,
        seed in 0u64..100,
    ) {
        let routing = ROUTINGS[routing_idx];
        let knobs = Knobs { bursty, cap, steer, autoscale, slow };
        let configs: Vec<ClusterConfig> = (0..2)
            .map(|i| rack(nodes, routing, knobs, seed + i))
            .collect();
        let serial = map_with_threads(1, configs.clone(), |_, cfg| ClusterSim::new(cfg).run());
        let pooled = map_with_threads(4, configs, |_, cfg| ClusterSim::new(cfg).run());
        for (a, b) in serial.iter().zip(&pooled) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
        for r in &serial {
            prop_assert!(r.recorded > 0, "rack recorded nothing");
            prop_assert!(r.conservation.exact(), "conservation: {:?}", r.conservation);
        }
    }

    /// Different cluster seeds give different runs: the seed feeds the
    /// arrival stream, the routing stream and every node's derived
    /// seed, so no configuration collapses the seed space.
    #[test]
    fn cluster_seeds_are_injective(seed_a in 0u64..1_000, offset in 1u64..1_000) {
        let build = |seed: u64| {
            ClusterSim::new(rack(3, RoutingPolicy::JsqD { d: 2 }, Knobs::OFF, seed)).run()
        };
        let a = build(seed_a);
        let b = build(seed_a + offset);
        prop_assert_eq!(fingerprint(&a), fingerprint(&build(seed_a)));
        prop_assert_ne!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
    }

    /// Per-node seeds derived from one cluster seed are injective
    /// across node counts: sibling nodes run distinct streams, and
    /// adding a node reshuffles the whole fleet rather than replaying
    /// the smaller rack with an idle spare.
    #[test]
    fn node_seeds_are_injective_across_node_counts(
        nodes in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let build =
            |n: usize| ClusterSim::new(rack(n, RoutingPolicy::RoundRobin, Knobs::OFF, seed)).run();
        let small = build(nodes);
        let grown = build(nodes + 1);
        let p99 = |r: &ClusterReport, i: usize| r.node_reports[i].latency.p99.to_bits();
        for i in 1..nodes {
            // Distinct derived seeds: sibling nodes never replay each
            // other's streams.
            prop_assert_ne!(p99(&small, 0), p99(&small, i));
        }
        prop_assert_ne!(small.latency.p99.to_bits(), grown.latency.p99.to_bits());
    }
}

/// Latency conservation through the cluster hop: with tracing on, the
/// fleet breakdown gains the [`Component::ClusterHop`] component, every
/// request's components still sum to its end-to-end latency to the
/// cycle, and the per-component means add up to the fleet mean.
#[test]
fn cluster_breakdown_conserves_latency_with_the_hop_component() {
    let mut cfg = rack(
        3,
        RoutingPolicy::JsqD { d: 2 },
        Knobs {
            cap: true,
            ..Knobs::OFF
        },
        42,
    );
    cfg.net.jitter_us = Some(um_workload::ServiceTimeDist::lognormal_with_mean(0.5, 4.0));
    cfg.trace = true;
    let r = ClusterSim::new(cfg).run();
    assert!(r.recorded > 0);
    assert!(
        r.conservation.exact(),
        "cycle-exact conservation: {:?}",
        r.conservation
    );
    let bd = r.breakdown.expect("trace on");
    assert!(
        bd.component(Component::ClusterHop).mean > 0.0,
        "rack fabric time lands in the cluster-hop component"
    );
    let total = bd.mean_total_us();
    assert!(
        (total - r.latency.mean).abs() < 1e-6 * r.latency.mean.max(1.0),
        "component means sum to the fleet mean: {total} vs {}",
        r.latency.mean
    );
}

/// A fixed-scenario anchor: the acceptance configuration (a JSQ(2)
/// rack with steering and a fail-slow plan) is bit-identical across
/// `UM_THREADS` 1 and 4.
#[test]
fn acceptance_rack_is_thread_invariant() {
    let cfg = rack(
        4,
        RoutingPolicy::JsqD { d: 2 },
        Knobs {
            bursty: true,
            cap: true,
            steer: true,
            autoscale: false,
            slow: true,
        },
        7,
    );
    let a = ClusterSim::new(cfg.clone()).run();
    let b = map_with_threads(4, vec![cfg], |_, c| ClusterSim::new(c).run())
        .pop()
        .expect("one report");
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.recorded > 0);
}
