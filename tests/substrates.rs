//! Cross-crate integration tests of the substrates: the hardware request
//! queue driven by the ServiceMap, caches driven by workload traces, and
//! the networks driven by app-shaped traffic.

use rand::Rng;
use um_arch::ServiceMap;
use um_mem::hierarchy::{AccessKind, HierarchyConfig, MemoryHierarchy};
use um_net::{LeafSpine, Network, NetworkConfig};
use um_sched::RequestQueue;
use um_sim::{rng, Cycles};
use um_workload::apps::SocialNetwork;
use um_workload::trace::{TraceGenerator, TraceProfile};

/// Drives a village's hardware RQ through a full burst lifecycle exactly
/// as the system simulator does: NIC enqueues via ServiceMap dispatch,
/// cores dequeue, requests block and resume, slots recycle.
#[test]
fn rq_and_servicemap_burst_lifecycle() {
    let mut map = ServiceMap::new();
    // Two villages host service 7; one hosts service 9.
    map.register(7, 0);
    map.register(7, 1);
    map.register(9, 1);
    let mut rqs: Vec<RequestQueue<u64>> = (0..2).map(|_| RequestQueue::new(64)).collect();

    // A burst of 100 requests for service 7 round-robins across villages.
    let mut slots = Vec::new();
    for i in 0..100u64 {
        let village = map.dispatch(7).expect("service registered");
        let slot = rqs[village]
            .enqueue(7, i)
            .expect("capacity 64 suffices for 50");
        slots.push((village, slot));
    }
    assert_eq!(rqs[0].len() + rqs[1].len(), 100);
    assert_eq!(rqs[0].len(), 50, "round-robin splits the burst evenly");

    // Cores drain: dequeue, block, unblock, complete.
    let mut completed = 0;
    for rq in &mut rqs {
        while let Some((slot, _)) = rq.dequeue(7) {
            rq.block(slot).expect("running blocks");
            rq.unblock(slot).expect("blocked unblocks");
            let (again, _) = rq.dequeue(7).expect("ready again");
            assert_eq!(again, slot);
            rq.complete(slot).expect("running completes");
            completed += 1;
        }
    }
    assert_eq!(completed, 100);
    assert!(rqs[0].is_empty() && rqs[1].is_empty());
}

/// A full RQ pushes overflow into a NIC buffer, which drains as slots
/// free — §4.3's overflow path.
#[test]
fn rq_overflow_drains_in_order() {
    let mut rq: RequestQueue<u64> = RequestQueue::new(4);
    let mut nic_buffer = std::collections::VecDeque::new();
    for i in 0..10u64 {
        if rq.enqueue(1, i).is_err() {
            nic_buffer.push_back(i);
        }
    }
    assert_eq!(nic_buffer.len(), 6);
    let mut served = Vec::new();
    while served.len() < 10 {
        let (slot, &v) = rq.dequeue(1).expect("work available");
        served.push(v);
        rq.complete(slot).expect("completes");
        while let Some(&next) = nic_buffer.front() {
            match rq.enqueue(1, next) {
                Ok(_) => {
                    nic_buffer.pop_front();
                }
                Err(_) => break,
            }
        }
    }
    assert_eq!(
        served,
        (0..10).collect::<Vec<_>>(),
        "FCFS survives overflow"
    );
}

/// Microservice traces keep their working set L1-resident; monolith
/// traces spill — Figure 9 vs Figure 1's premise, across `um-workload`
/// and `um-mem`.
#[test]
fn trace_to_cache_locality_contrast() {
    let hit_rate = |profile: TraceProfile| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
        let mut g = TraceGenerator::new(profile, 5);
        let mut now = Cycles::ZERO;
        for r in g.generate(150_000) {
            let kind = if r.instr {
                AccessKind::InstrFetch
            } else if r.write {
                AccessKind::DataWrite
            } else {
                AccessKind::DataRead
            };
            let lat = h.access(r.addr, kind, now);
            now += lat;
        }
        h.stats().l1d.hit_rate()
    };
    let micro = hit_rate(TraceProfile::microservice());
    let mono = hit_rate(TraceProfile::monolith());
    assert!(micro > mono, "microservice {micro} vs monolith {mono}");
    assert!(micro > 0.85, "microservice L1d hit rate {micro}");
}

/// App-shaped traffic over the leaf-spine: cross-pod request/response
/// pairs between random villages never exceed 4 hops and spread across
/// redundant paths.
#[test]
fn leafspine_carries_app_traffic() {
    let topo = LeafSpine::paper_default();
    let mut net = Network::new(topo, NetworkConfig::on_package());
    let apps = SocialNetwork::new();
    let mut r = rng::stream(11, "itest-traffic");
    let mut worst_gap = Cycles::ZERO;
    for _ in 0..500 {
        let plan = apps.sample_plan(SocialNetwork::CPOST, &mut r);
        let src = r.gen_range(0..32);
        for _ in plan.callees() {
            let dst = r.gen_range(0..32);
            let depart = Cycles::new(r.gen_range(0..10_000));
            let arrive = net.send(src, dst, 512, depart);
            worst_gap = worst_gap.max(arrive - depart);
        }
    }
    let stats = net.stats();
    assert!(stats.messages > 500);
    assert!(
        stats.hops as f64 / stats.messages as f64 <= 4.0,
        "leaf-spine paths stay within 4 hops"
    );
    // Uncontended floor: 4 hops x (5 + serialization); contention adds at
    // most a modest factor at this rate.
    assert!(
        worst_gap < Cycles::new(20_000),
        "worst traversal {worst_gap} exploded"
    );
}

/// Power/area model and machine configs agree on the iso-power and
/// iso-area sizings (§5, §6.8).
#[test]
fn iso_sizing_round_trip() {
    use um_arch::power;
    let um = um_arch::MachineConfig::umanycore();
    assert_eq!(power::iso_power_server_cores(&um), 40);
    assert_eq!(power::iso_area_server_cores(&um), 128);
}
