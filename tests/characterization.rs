//! Integration tests for the §2-§3 characterization pipeline: trace
//! models, footprint sharing, cache behaviour and the Figure 1 analysis.

use umanycore::experiments::motivation;

/// Figure 1: the calibrated model reproduces the paper's speedups.
#[test]
fn fig1_matches_paper_anchors() {
    let rows = motivation::fig1_rows();
    let paper_mono = [1.19, 1.14, 1.16, 1.02];
    let paper_micro = [1.02, 1.01, 1.00, 1.00];
    for (i, row) in rows.iter().enumerate() {
        assert!(
            (row.mono_speedup - paper_mono[i]).abs() < 0.03,
            "{}: mono {} vs paper {}",
            row.opt.name(),
            row.mono_speedup,
            paper_mono[i]
        );
        assert!(
            (row.micro_speedup - paper_micro[i]).abs() < 0.02,
            "{}: micro {} vs paper {}",
            row.opt.name(),
            row.micro_speedup,
            paper_micro[i]
        );
    }
}

/// Figure 1 cross-check: the trace-driven measurement preserves the
/// ordering (monoliths gain much more than microservices overall).
#[test]
fn fig1_measured_ordering_holds() {
    let rows = motivation::fig1_rows_measured(42);
    let mono_gain: f64 = rows.iter().map(|r| r.mono_speedup - 1.0).sum();
    let micro_gain: f64 = rows.iter().map(|r| r.micro_speedup - 1.0).sum();
    assert!(
        mono_gain > micro_gain,
        "monoliths should gain more: {mono_gain} vs {micro_gain}"
    );
}

/// Figure 2's quantiles from the synthetic Alibaba model.
#[test]
fn fig2_quantiles() {
    let cdf = motivation::fig2_cdf(42, 50_000);
    let median = cdf.inverse(0.5);
    assert!((430.0..570.0).contains(&median), "median {median}");
    assert!(cdf.eval(1_000.0) < 0.90, "p(<=1000) too high");
    assert!(cdf.eval(1_500.0) > 0.90, "p(<=1500) too low");
}

/// Figure 4: median utilization ~14%, P99 under ~60%.
#[test]
fn fig4_quantiles() {
    let cdf = motivation::fig4_cdf(42, 50_000);
    assert!((0.12..0.16).contains(&cdf.inverse(0.5)));
    assert!(cdf.inverse(0.99) < 0.65);
}

/// Figure 5: median ~4.2 RPCs, ~5% with 16 or more.
#[test]
fn fig5_quantiles() {
    let cdf = motivation::fig5_cdf(42, 50_000);
    let median = cdf.inverse(0.5);
    assert!((3.0..5.5).contains(&median), "median {median}");
    let frac16 = 1.0 - cdf.eval(15.99);
    assert!((0.02..0.10).contains(&frac16), "frac>=16 {frac16}");
}

/// Figure 8: sharing fractions sit in the paper's 0.78-0.99 band for
/// instructions and high for data.
#[test]
fn fig8_sharing_bands() {
    let rows = motivation::fig8_rows(42, 60);
    for (label, s) in [
        ("handler-handler", rows.handler_handler),
        ("handler-init", rows.handler_init),
    ] {
        assert!(s.i_line > 0.75, "{label} i_line {}", s.i_line);
        assert!(s.i_page > 0.75, "{label} i_page {}", s.i_page);
        assert!(s.d_page > 0.5, "{label} d_page {}", s.d_page);
        assert!(s.mean() <= 1.0);
    }
}

/// Figure 9: L1-side hit rates are high and at least as good as the
/// L2-side (the L1s filter the high-locality accesses).
#[test]
fn fig9_hit_rate_structure() {
    let rows = motivation::fig9_rows(42, 200_000);
    assert!(rows.i_l1_cache > 0.95, "i L1 {}", rows.i_l1_cache);
    assert!(rows.d_l1_cache > 0.85, "d L1 {}", rows.d_l1_cache);
    assert!(rows.d_l1_tlb > 0.95, "d L1 TLB {}", rows.d_l1_tlb);
    assert!(
        rows.d_l2_cache <= rows.d_l1_cache + 0.05,
        "L2 should not look better than the filtered L1: {} vs {}",
        rows.d_l2_cache,
        rows.d_l1_cache
    );
}
