//! Determinism of fault-injected runs.
//!
//! The fault subsystem's core contract: a [`FaultPlan`] is part of the
//! configuration, so a faulted run must be exactly as reproducible as a
//! healthy one — bit-identical across repeats and across `UM_THREADS`
//! worker-pool sizes — and different fault seeds must actually produce
//! different plans (seed injectivity through `derive_seed`).

use proptest::prelude::*;
use um_arch::MachineConfig;
use um_sched::{HedgeConfig, MitigationConfig, RetryConfig};
use um_sim::fault::{FaultPlan, FaultWindow};
use um_sim::Cycles;
use umanycore::experiments::parallel::map_with_threads;
use umanycore::{RunReport, SimConfig, SystemSim, Workload};

const HORIZON_US: f64 = 8_000.0;

/// A random-but-seeded fault plan: the builder's own randomized helpers
/// plus optional village-wide fail-slow and message drops, shaped by the
/// proptest inputs.
fn random_plan(seed: u64, stops: usize, links: usize, slow: u32, drops: bool) -> FaultPlan {
    let freq = MachineConfig::umanycore().core.frequency;
    let horizon = Cycles::from_micros(HORIZON_US, freq);
    let mean_outage = Cycles::from_micros(500.0, freq);
    let mut b = FaultPlan::builder(seed)
        .random_fail_stops(stops, 1, 128, horizon)
        .random_link_faults(links, 1, 16, horizon, mean_outage, 4.0);
    if slow > 0 {
        b = b.fail_slow_every_village(1, 128, slow, FaultWindow::new(Cycles::ZERO, horizon, 5.0));
    }
    if drops {
        b = b.message_drops(0.01);
    }
    b.build()
}

fn mitigation(hedge: bool, retry: bool, steer: bool) -> MitigationConfig {
    MitigationConfig {
        hedge: hedge.then(|| HedgeConfig::after_quantile(0.9, 300.0)),
        retry: retry.then(|| RetryConfig::with_timeout_us(1_200.0)),
        steer,
    }
}

fn run_sim(plan: &FaultPlan, mitigation: MitigationConfig, seed: u64) -> RunReport {
    SystemSim::new(SimConfig {
        machine: MachineConfig::umanycore(),
        workload: Workload::social_mix(),
        rps_per_server: 6_000.0,
        servers: 1,
        horizon_us: HORIZON_US,
        warmup_us: 800.0,
        seed,
        fault_plan: plan.clone(),
        mitigation,
        ..SimConfig::default()
    })
    .run()
}

/// The report fields a determinism check compares, bit-exactly.
fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64, umanycore::FaultStats) {
    (
        r.latency.p99.to_bits(),
        r.latency.mean.to_bits(),
        r.completed,
        r.recorded,
        r.faults,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case runs full simulations at two pool sizes
        ..ProptestConfig::default()
    })]

    /// Any fault plan + mitigation combination is bit-identical across
    /// repeats and across `UM_THREADS` pool sizes, conserves latency, and
    /// accounts for every planned fault event.
    #[test]
    fn faulted_runs_are_bit_identical_across_threads(
        plan_seed in 0u64..1_000,
        stops in 0usize..4,
        links in 0usize..3,
        slow in 0u32..2,
        drops in proptest::bool::ANY,
        hedge in proptest::bool::ANY,
        retry in proptest::bool::ANY,
        steer in proptest::bool::ANY,
        seed in 0u64..100,
    ) {
        let plan = random_plan(plan_seed, stops, links, slow, drops);
        let m = mitigation(hedge, retry, steer);
        let configs: Vec<(FaultPlan, MitigationConfig, u64)> = (0..2)
            .map(|i| (plan.clone(), m, seed + i))
            .collect();
        let serial = map_with_threads(1, configs.clone(), |_, (p, m, s)| run_sim(&p, m, s));
        let pooled = map_with_threads(4, configs, |_, (p, m, s)| run_sim(&p, m, s));
        for (a, b) in serial.iter().zip(&pooled) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
        for r in &serial {
            prop_assert!(r.conservation.exact(), "conservation: {:?}", r.conservation);
            prop_assert_eq!(
                r.faults.faults_applied + r.faults.faults_masked,
                plan.len() as u64,
                "fault accounting: {:?} vs {} planned", r.faults, plan.len()
            );
        }
    }

    /// Different fault-plan seeds give different randomized plans (seed
    /// injectivity through the derived fault stream) while the *same*
    /// seed reproduces the plan exactly.
    #[test]
    fn plan_seeds_are_injective(seed_a in 0u64..10_000, offset in 1u64..10_000) {
        let seed_b = seed_a + offset;
        let build = |seed: u64| random_plan(seed, 4, 3, 0, false);
        prop_assert_eq!(build(seed_a), build(seed_a));
        prop_assert_ne!(build(seed_a), build(seed_b));
    }

    /// Different simulation seeds under the same fault plan produce
    /// different runs — the fault stream does not collapse the seed space.
    #[test]
    fn sim_seeds_stay_injective_under_faults(seed_a in 0u64..1_000, offset in 1u64..1_000) {
        let plan = random_plan(7, 2, 2, 1, true);
        let m = mitigation(true, true, true);
        let a = run_sim(&plan, m, seed_a);
        let b = run_sim(&plan, m, seed_a + offset);
        prop_assert_ne!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
    }
}

/// A fixed-scenario anchor for the proptests above: the exact
/// ISSUE acceptance configuration (one fail-slow core per village,
/// hedging on) is bit-identical across `UM_THREADS` 1 and 4.
#[test]
fn acceptance_scenario_is_thread_invariant() {
    let freq = MachineConfig::umanycore().core.frequency;
    let plan = FaultPlan::builder(42)
        .fail_slow_every_village(
            1,
            128,
            1,
            FaultWindow::new(Cycles::ZERO, Cycles::from_micros(HORIZON_US, freq), 6.0),
        )
        .build();
    let m = MitigationConfig {
        hedge: Some(HedgeConfig::after_quantile(0.95, 250.0)),
        ..MitigationConfig::default()
    };
    let a = run_sim(&plan, m, 7);
    let b = map_with_threads(4, vec![(plan, m)], |_, (p, m)| run_sim(&p, m, 7))
        .pop()
        .expect("one report");
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(
        a.faults.hedges > 0,
        "hedges fire in the acceptance scenario"
    );
}
