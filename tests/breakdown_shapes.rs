//! Golden-shape regressions over the *measured* latency breakdowns: the
//! qualitative decompositions the paper hangs its argument on must fall
//! out of the traced simulator, not be assumed.
//!
//! - §3.2/Figure 3: on a software-scheduled baseline past saturation,
//!   queueing dominates end-to-end latency; at light load it does not.
//! - §4.4/Figure 6: hardware context switching shrinks the ctx-switch
//!   share by orders of magnitude versus the software baselines.
//! - §3.3/Table 1: downstream RPC wait belongs to the *callee's*
//!   components (storage service, callee compute), never double-counted
//!   as caller blocked time — the conservation identity proves it.

use um_arch::MachineConfig;
use um_sim::trace::Component;
use um_workload::apps::SocialNetwork;
use umanycore::{RunReport, SimConfig, SystemSim, Workload};

fn traced(machine: MachineConfig, rps: f64, horizon_us: f64, workload: Workload) -> RunReport {
    SystemSim::new(SimConfig {
        machine,
        workload,
        rps_per_server: rps,
        horizon_us,
        warmup_us: horizon_us * 0.1,
        seed: 42,
        trace: true,
        ..SimConfig::default()
    })
    .run()
}

#[test]
fn queueing_dominates_saturated_server_class() {
    // 25K RPS is past the 40-core ServerClass's capacity (the tail tests
    // already pin that); the measured breakdown must show queue-wait as
    // the dominant component, and by a wide margin.
    let hot = traced(
        MachineConfig::server_class_iso_power(),
        25_000.0,
        60_000.0,
        Workload::social_mix(),
    );
    let bd = hot.breakdown.as_ref().expect("traced");
    for (c, s) in bd.components() {
        eprintln!("hot  {c:>15}: mean {:10.2} p99 {:12.2}", s.mean, s.p99);
    }
    assert_eq!(bd.dominant(), Component::QueueWait);
    assert!(
        bd.component(Component::QueueWait).mean > hot.latency.mean * 0.5,
        "past saturation, most of the mean latency is queueing: {} of {}",
        bd.component(Component::QueueWait).mean,
        hot.latency.mean
    );

    // At light load the same machine's queueing share is minor.
    let cold = traced(
        MachineConfig::server_class_iso_power(),
        3_000.0,
        60_000.0,
        Workload::social_mix(),
    );
    let bd = cold.breakdown.as_ref().expect("traced");
    for (c, s) in bd.components() {
        eprintln!("cold {c:>15}: mean {:10.2} p99 {:12.2}", s.mean, s.p99);
    }
    assert_ne!(bd.dominant(), Component::QueueWait);
    assert!(
        bd.component(Component::QueueWait).mean < cold.latency.mean * 0.25,
        "at light load queueing is a minor share: {} of {}",
        bd.component(Component::QueueWait).mean,
        cold.latency.mean
    );
}

#[test]
fn hardware_context_switching_shrinks_the_ctx_share() {
    // Same load, same workload: uManycore's hardware switch (96-cycle
    // restore half) versus ScaleOut's software Shinjuku-style switch.
    let um = traced(
        MachineConfig::umanycore(),
        10_000.0,
        30_000.0,
        Workload::social_mix(),
    );
    let so = traced(
        MachineConfig::scaleout(),
        10_000.0,
        30_000.0,
        Workload::social_mix(),
    );
    let um_cs = um
        .breakdown
        .as_ref()
        .expect("traced")
        .component(Component::CtxSwitch)
        .mean;
    let so_cs = so
        .breakdown
        .as_ref()
        .expect("traced")
        .component(Component::CtxSwitch)
        .mean;
    eprintln!("ctx-switch mean us: uManycore {um_cs} vs ScaleOut {so_cs}");
    assert!(so_cs > 0.0, "software machines pay visible switch time");
    assert!(
        um_cs < so_cs / 4.0,
        "hardware switching must shrink the ctx share: {um_cs} vs {so_cs}"
    );
}

#[test]
fn downstream_wait_lands_in_callee_components() {
    // ComposePost fans out through synchronous calls; the old
    // caller-side accounting counted a child's whole latency twice (once
    // in the child's rows, once inside the parent's blocked time). The
    // measured breakdown cannot: components sum to the root's end-to-end
    // latency exactly, and the downstream time shows up as the callee's
    // storage/compute/rpc components.
    let r = traced(
        MachineConfig::scaleout(),
        5_000.0,
        30_000.0,
        Workload::social_app(SocialNetwork::CPOST),
    );
    assert!(
        r.conservation.exact(),
        "no overlap, no gaps: {:?}",
        r.conservation
    );
    let bd = r.breakdown.as_ref().expect("traced");
    for (c, s) in bd.components() {
        eprintln!("cpost {c:>15}: mean {:10.2}", s.mean);
    }
    // The no-double-count identity: component means sum to the mean
    // end-to-end latency (f64 conversion noise only).
    let err = (bd.mean_total_us() - r.latency.mean).abs();
    assert!(
        err <= r.latency.mean * 1e-9,
        "component means {} vs latency mean {}",
        bd.mean_total_us(),
        r.latency.mean
    );
    // Downstream time is attributed, not lost: the storage tier serves
    // every leaf call, so its share is visible in the root breakdown.
    assert!(bd.component(Component::StorageService).mean > 0.0);
    // The merged rpc-processing share exceeds what any single invocation
    // can accrue on this machine (one request-processing tax per
    // invocation) — the callees' shares really are folded into the root,
    // rather than hiding inside an opaque caller-side "blocked" bucket.
    assert!(
        bd.component(Component::RpcProcessing).mean > 2.0 * umanycore::params::SW_RPC_PROC_US,
        "root rpc-processing {} must include callee shares",
        bd.component(Component::RpcProcessing).mean
    );
}
