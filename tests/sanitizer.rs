//! End-to-end sanitizer runs: full system simulations with every runtime
//! checker compiled in must finish with a clean registry (the simulator
//! itself calls `assert_clean` at report time, so reaching the report at
//! all means no checker fired).
#![cfg(feature = "sim-sanitizer")]

use um_arch::MachineConfig;
use um_sched::{HedgeConfig, MitigationConfig, RetryConfig};
use um_sim::fault::{FaultPlan, FaultWindow};
use um_sim::sanitizer;
use um_sim::Cycles;
use umanycore::{RunReport, SimConfig, SystemSim, Workload};

fn run(seed: u64, machine: MachineConfig) -> RunReport {
    SystemSim::new(SimConfig {
        machine,
        workload: Workload::social_mix(),
        rps_per_server: 8_000.0,
        horizon_us: 25_000.0,
        warmup_us: 2_500.0,
        seed,
        ..SimConfig::default()
    })
    .run()
}

#[test]
fn full_runs_are_violation_free_on_every_machine() {
    for machine in [
        MachineConfig::umanycore(),
        MachineConfig::scaleout(),
        MachineConfig::server_class_iso_power(),
    ] {
        let r = run(7, machine);
        assert!(r.completed > 50, "run did work: {} completed", r.completed);
        assert_eq!(
            sanitizer::violation_count(),
            0,
            "registry empty after a checked run"
        );
    }
}

#[test]
fn faulted_mitigated_runs_are_violation_free() {
    // The fault-accounting checker (and every other checker) stays quiet
    // through the full resilience gauntlet: fail-stops, fail-slow
    // stragglers, link faults, message drops, hedging, retries, steering.
    let freq = MachineConfig::umanycore().core.frequency;
    let horizon = Cycles::from_micros(25_000.0, freq);
    let plan = FaultPlan::builder(21)
        .random_fail_stops(4, 1, 128, horizon)
        .fail_slow_every_village(1, 128, 1, FaultWindow::new(Cycles::ZERO, horizon, 5.0))
        .random_link_faults(3, 1, 16, horizon, Cycles::from_micros(500.0, freq), 4.0)
        .message_drops(0.02)
        .build();
    let r = SystemSim::new(SimConfig {
        machine: MachineConfig::umanycore(),
        workload: Workload::social_mix(),
        rps_per_server: 8_000.0,
        horizon_us: 25_000.0,
        warmup_us: 2_500.0,
        seed: 21,
        fault_plan: plan.clone(),
        mitigation: MitigationConfig {
            hedge: Some(HedgeConfig::after_quantile(0.95, 250.0)),
            retry: Some(RetryConfig::with_timeout_us(1_500.0)),
            steer: true,
        },
        ..SimConfig::default()
    })
    .run();
    assert!(r.completed > 50, "run did work: {} completed", r.completed);
    assert_eq!(
        r.faults.faults_applied + r.faults.faults_masked,
        plan.len() as u64,
        "every planned fault fired or was explicitly masked"
    );
    assert_eq!(sanitizer::violation_count(), 0);
}

#[test]
#[should_panic(expected = "fault-accounting")]
fn corrupted_fault_accounting_trips_the_checker() {
    // Deliberate-violation coverage: unbalance the applied/masked totals
    // and the fault-accounting checker must abort the run at report time.
    let mut sim = SystemSim::new(SimConfig {
        machine: MachineConfig::umanycore(),
        workload: Workload::social_mix(),
        rps_per_server: 5_000.0,
        horizon_us: 5_000.0,
        warmup_us: 500.0,
        seed: 3,
        ..SimConfig::default()
    });
    sim.corrupt_fault_accounting_for_sanitizer_test();
    let _ = sim.run();
}

#[test]
fn checked_run_matches_unchecked_semantics() {
    // The checkers observe, never steer: two sanitized runs of the same
    // seed must still be bit-identical (the cross-feature comparison is
    // done by the results/ regeneration diff in CI).
    let a = run(99, MachineConfig::umanycore());
    let b = run(99, MachineConfig::umanycore());
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
}
