//! End-to-end sanitizer runs: full system simulations with every runtime
//! checker compiled in must finish with a clean registry (the simulator
//! itself calls `assert_clean` at report time, so reaching the report at
//! all means no checker fired).
#![cfg(feature = "sim-sanitizer")]

use um_arch::MachineConfig;
use um_sim::sanitizer;
use umanycore::{RunReport, SimConfig, SystemSim, Workload};

fn run(seed: u64, machine: MachineConfig) -> RunReport {
    SystemSim::new(SimConfig {
        machine,
        workload: Workload::social_mix(),
        rps_per_server: 8_000.0,
        horizon_us: 25_000.0,
        warmup_us: 2_500.0,
        seed,
        ..SimConfig::default()
    })
    .run()
}

#[test]
fn full_runs_are_violation_free_on_every_machine() {
    for machine in [
        MachineConfig::umanycore(),
        MachineConfig::scaleout(),
        MachineConfig::server_class_iso_power(),
    ] {
        let r = run(7, machine);
        assert!(r.completed > 50, "run did work: {} completed", r.completed);
        assert_eq!(
            sanitizer::violation_count(),
            0,
            "registry empty after a checked run"
        );
    }
}

#[test]
fn checked_run_matches_unchecked_semantics() {
    // The checkers observe, never steer: two sanitized runs of the same
    // seed must still be bit-identical (the cross-feature comparison is
    // done by the results/ regeneration diff in CI).
    let a = run(99, MachineConfig::umanycore());
    let b = run(99, MachineConfig::umanycore());
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
}
