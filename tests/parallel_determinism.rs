//! The parallel sweep runner's contract: results are bit-identical to
//! the serial path at any worker-pool size, and per-point seed
//! derivation never collides within a sweep.

use proptest::prelude::*;
use um_arch::MachineConfig;
use um_sim::rng;
use um_workload::apps::SocialNetwork;
use umanycore::experiments::parallel;
use umanycore::{RunReport, SimConfig, SystemSim, Workload};

/// A fig14-style sweep: every SocialNetwork app on every machine, one
/// simulation per (app, machine) point, each point seeded by
/// [`rng::derive_seed`] from the master seed exactly as the drivers do.
fn fig14_style_configs() -> Vec<SimConfig> {
    let machines = [
        MachineConfig::server_class_iso_power(),
        MachineConfig::scaleout(),
        MachineConfig::umanycore(),
    ];
    (0..SocialNetwork::ALL.len())
        .flat_map(|a| {
            machines.clone().map(move |machine| SimConfig {
                machine,
                workload: Workload::social_app(SocialNetwork::ALL[a]),
                rps_per_server: 10_000.0,
                horizon_us: 10_000.0,
                warmup_us: 1_000.0,
                seed: rng::derive_seed(42, a as u64),
                ..SimConfig::default()
            })
        })
        .collect()
}

fn run_with_threads(threads: usize) -> Vec<RunReport> {
    parallel::map_with_threads(threads, fig14_style_configs(), |_, cfg| {
        SystemSim::new(cfg).run()
    })
}

/// `UM_THREADS=4` (and any other pool size) must reproduce the serial
/// sweep bit for bit — same completion counts, same percentile bits.
#[test]
fn four_workers_bit_identical_to_serial() {
    let serial = run_with_threads(1);
    assert_eq!(serial.len(), SocialNetwork::ALL.len() * 3);
    for threads in [4, 7] {
        let parallel = run_with_threads(threads);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s.completed, p.completed, "point {i}");
            assert_eq!(s.recorded, p.recorded, "point {i}");
            assert_eq!(s.ctx_switches, p.ctx_switches, "point {i}");
            assert_eq!(s.icn_messages, p.icn_messages, "point {i}");
            assert_eq!(
                s.latency.mean.to_bits(),
                p.latency.mean.to_bits(),
                "point {i}"
            );
            assert_eq!(
                s.latency.p99.to_bits(),
                p.latency.p99.to_bits(),
                "point {i}"
            );
            assert_eq!(
                s.queueing.p99.to_bits(),
                p.queueing.p99.to_bits(),
                "point {i}"
            );
            assert_eq!(
                s.utilization.to_bits(),
                p.utilization.to_bits(),
                "point {i}"
            );
        }
    }
}

/// Distinct sweep points must get distinct derived seeds, or two rows
/// of a figure would silently share their randomness.
#[test]
fn derived_seeds_injective_over_sweep_indices() {
    let master = 42;
    let seeds: Vec<u64> = (0..4096).map(|i| rng::derive_seed(master, i)).collect();
    let mut deduped = seeds.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        seeds.len(),
        "collision within one master seed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Injectivity of the per-point seed derivation: for any master
    /// seed, two different point indices never map to the same seed,
    /// and the derived seed never degenerates back to the master.
    #[test]
    fn derive_seed_injective(master in 0u64..u64::MAX, a in 0u64..1 << 20, b in 0u64..1 << 20) {
        prop_assume!(a != b);
        prop_assert_ne!(rng::derive_seed(master, a), rng::derive_seed(master, b));
        prop_assert_ne!(rng::derive_seed(master, a), master);
    }

    /// Derivation is a pure function of `(master, index)` — repeated
    /// calls agree, so worker scheduling can never perturb a seed.
    #[test]
    fn derive_seed_stable(master in 0u64..u64::MAX, i in 0u64..u64::MAX) {
        prop_assert_eq!(rng::derive_seed(master, i), rng::derive_seed(master, i));
    }
}
