//! The latency-provenance headline invariant: **every request's breakdown
//! components sum to its end-to-end latency, to the cycle**, on every
//! machine, topology, arrival process and scheduling policy — and the
//! measured breakdowns are bit-identical at any worker-pool size.
//!
//! These are release-mode-safe checks: the simulator's debug assertions
//! catch a conservation violation at the offending request, while the
//! [`ConservationStats`] totals asserted here catch it in any build.

use proptest::prelude::*;
use um_arch::config::IcnKind;
use um_arch::MachineConfig;
use um_sched::{HedgeConfig, MitigationConfig, RetryConfig};
use um_sim::fault::{FaultPlan, FaultWindow};
use um_sim::rng;
use um_sim::Cycles;
use umanycore::experiments::parallel;
use umanycore::{ArrivalProcess, RunReport, SimConfig, SystemSim, Workload};

fn machine(idx: usize) -> MachineConfig {
    match idx {
        0 => MachineConfig::umanycore(),
        1 => MachineConfig::scaleout(),
        _ => MachineConfig::server_class_iso_power(),
    }
}

fn assert_conserved(r: &RunReport) {
    assert!(r.completed > 0, "a run this long must finish requests");
    assert!(
        r.conservation.checked >= r.completed,
        "roots and RPC children are all checked"
    );
    assert_eq!(
        r.conservation.max_error_cycles, 0,
        "some request's breakdown missed cycles: {:?}",
        r.conservation
    );
    assert_eq!(
        r.conservation.breakdown_cycles, r.conservation.end_to_end_cycles,
        "aggregate attribution drifted: {:?}",
        r.conservation
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Conservation holds bit-exactly across the whole configuration
    /// cross-product the simulator supports.
    #[test]
    fn breakdown_sums_to_latency_on_any_config(
        machine_idx in 0usize..3,
        icn_idx in 0usize..3,
        rps in 2_000.0f64..12_000.0,
        seed in 0u64..1_000,
        hold_core in proptest::bool::ANY,
        work_stealing in proptest::bool::ANY,
        bursty in proptest::bool::ANY,
        trace in proptest::bool::ANY,
    ) {
        let mut machine = machine(machine_idx);
        let icn = [IcnKind::Mesh, IcnKind::FatTree, IcnKind::LeafSpine][icn_idx];
        // A fat tree needs a power-of-two cluster count; keep the
        // machine's own ICN where the override cannot apply.
        if icn != IcnKind::FatTree || machine.shape.clusters.is_power_of_two() {
            machine.icn = icn;
        }
        let r = SystemSim::new(SimConfig {
            machine,
            workload: Workload::social_mix(),
            rps_per_server: rps,
            horizon_us: 8_000.0,
            warmup_us: 800.0,
            seed,
            hold_core_while_blocked: hold_core,
            work_stealing,
            arrivals: if bursty {
                ArrivalProcess::Bursty
            } else {
                ArrivalProcess::Poisson
            },
            trace,
            ..SimConfig::default()
        })
        .run();
        assert_conserved(&r);
        prop_assert_eq!(r.breakdown.is_some(), trace);
    }

    /// Conservation survives the resilience machinery: hedged attempts,
    /// timed-out retries, dropped messages, and abandoned operations all
    /// still charge every cycle of a request's lifetime to exactly one
    /// component. A cancelled hedge in particular must not double-charge
    /// the blocked span.
    #[test]
    fn conservation_holds_for_hedged_retried_and_abandoned_requests(
        drop_p in 0.0f64..0.08,
        hedge in proptest::bool::ANY,
        retry in proptest::bool::ANY,
        steer in proptest::bool::ANY,
        slow in 0u32..2,
        seed in 0u64..1_000,
    ) {
        let freq = MachineConfig::umanycore().core.frequency;
        let horizon = Cycles::from_micros(8_000.0, freq);
        let mut plan = FaultPlan::builder(seed ^ 0x5eed)
            .message_drops(drop_p);
        if slow > 0 {
            plan = plan.fail_slow_every_village(
                1,
                128,
                slow,
                FaultWindow::new(Cycles::ZERO, horizon, 5.0),
            );
        }
        let r = SystemSim::new(SimConfig {
            machine: MachineConfig::umanycore(),
            workload: Workload::social_mix(),
            rps_per_server: 6_000.0,
            horizon_us: 8_000.0,
            warmup_us: 800.0,
            seed,
            fault_plan: plan.build(),
            mitigation: MitigationConfig {
                hedge: hedge.then(|| HedgeConfig::after_quantile(0.9, 300.0)),
                retry: retry.then(|| RetryConfig::with_timeout_us(1_200.0)),
                steer,
            },
            trace: true,
            ..SimConfig::default()
        })
        .run();
        assert_conserved(&r);
        // Mitigation accounting is internally consistent no matter the mix.
        prop_assert!(r.faults.rpc_attempts >= r.faults.rpc_ops);
        prop_assert_eq!(
            r.faults.rpc_attempts - r.faults.rpc_ops,
            r.faults.hedges + r.faults.retries,
            "extra attempts are exactly the hedges plus the retries"
        );
    }
}

/// The conservation accounting and the measured per-component digests are
/// bit-identical whether a sweep runs serially or on a worker pool — the
/// provenance layer inherits the runner's determinism contract.
#[test]
fn breakdowns_identical_across_worker_pool_sizes() {
    let configs: Vec<SimConfig> = (0..6)
        .map(|i| SimConfig {
            machine: machine(i % 3),
            workload: Workload::social_mix(),
            rps_per_server: 9_000.0,
            horizon_us: 8_000.0,
            warmup_us: 800.0,
            seed: rng::derive_seed(42, i as u64),
            trace: true,
            ..SimConfig::default()
        })
        .collect();
    let serial = parallel::map_with_threads(1, configs.clone(), |_, cfg| SystemSim::new(cfg).run());
    let pooled = parallel::map_with_threads(4, configs, |_, cfg| SystemSim::new(cfg).run());
    for (i, (s, p)) in serial.iter().zip(&pooled).enumerate() {
        assert_conserved(s);
        assert_eq!(s.conservation, p.conservation, "point {i}");
        let sb = s.breakdown.as_ref().expect("traced run");
        let pb = p.breakdown.as_ref().expect("traced run");
        for (c, ss) in sb.components() {
            let ps = pb.component(c);
            assert_eq!(ss.count, ps.count, "point {i} {c}");
            assert_eq!(ss.mean.to_bits(), ps.mean.to_bits(), "point {i} {c}");
            assert_eq!(ss.p50.to_bits(), ps.p50.to_bits(), "point {i} {c}");
            assert_eq!(ss.p99.to_bits(), ps.p99.to_bits(), "point {i} {c}");
        }
    }
}

/// Queue overrides (the Figure 3 sweep) reshape where time is spent but
/// cannot break conservation — the single-queue extreme serializes every
/// dispatch through one lock, the longest-odds case for the accounting.
#[test]
fn conservation_survives_queue_layout_extremes() {
    for (queues, stealing) in [(1usize, false), (1024, true)] {
        let r = SystemSim::new(SimConfig {
            machine: MachineConfig::scaleout(),
            workload: Workload::social_mix(),
            rps_per_server: 8_000.0,
            horizon_us: 8_000.0,
            warmup_us: 800.0,
            seed: 5,
            queues_override: Some(queues),
            work_stealing: stealing,
            trace: true,
            ..SimConfig::default()
        })
        .run();
        assert_conserved(&r);
    }
}

/// A tiny hardware RQ forces NIC-buffer overflows; buffered requests'
/// waiting time still lands in `queue-wait` and conservation holds.
#[test]
fn conservation_survives_rq_overflow() {
    let mut machine = MachineConfig::umanycore();
    machine.rq_capacity = 2;
    let r = SystemSim::new(SimConfig {
        machine,
        workload: Workload::social_mix(),
        rps_per_server: 150_000.0,
        horizon_us: 10_000.0,
        warmup_us: 1_000.0,
        seed: 6,
        arrivals: ArrivalProcess::Bursty,
        trace: true,
        ..SimConfig::default()
    })
    .run();
    assert!(r.rq_overflows > 0, "capacity 2 must overflow at this load");
    assert_conserved(&r);
}

/// Heavy unmitigated message loss abandons operations outright; the
/// abandoned requests' whole blocked spans land in `resilience` and the
/// books still balance to the cycle.
#[test]
fn conservation_survives_abandoned_requests() {
    let r = SystemSim::new(SimConfig {
        machine: MachineConfig::umanycore(),
        workload: Workload::social_mix(),
        rps_per_server: 6_000.0,
        horizon_us: 20_000.0,
        warmup_us: 2_000.0,
        seed: 8,
        fault_plan: FaultPlan::builder(8).message_drops(0.05).build(),
        trace: true,
        ..SimConfig::default()
    })
    .run();
    assert!(r.faults.gave_up_ops > 0, "5% loss must abandon operations");
    assert!(
        r.faults.gave_up_requests > 0,
        "abandoned operations must surface at roots"
    );
    assert_conserved(&r);
}
