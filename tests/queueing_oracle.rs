//! Analytic queueing oracles for the system simulator.
//!
//! A single-core, single-service machine fed Poisson arrivals is an
//! M/G/1 queue, so the simulator's measured latencies must match the
//! closed forms: M/M/1 (exponential service) `W = E[S] / (1 - rho)` and
//! M/D/1 (deterministic service) `Wq = rho E[S] / (2 (1 - rho))`. The
//! runs execute through the full event path — NIC ingress, village
//! queue, dispatch, handler — so agreement validates the whole pipeline,
//! not a shortcut model. Each oracle is checked at `UM_THREADS = 1` and
//! `4` via the sweep runner, which must be bit-identical.
//!
//! The cluster layer has its own closed forms, checked the same way on
//! racks of single-core nodes behind the load balancer:
//!
//! - **random routing** splits the Poisson fleet stream into k
//!   independent Poisson streams, so each node is M/M/1 at the same
//!   rho and the fleet mean is the M/M/1 sojourn;
//! - **central queue + admission cap 1** holds every waiting request at
//!   the load balancer and dispatches to the first idle node: textbook
//!   M/M/k, Erlang-C delay;
//! - **JSQ(2)** must land between those two, above its mean-field
//!   (large-k) limit.

use umanycore::cluster::{ClusterConfig, ClusterNetConfig, ClusterReport, ClusterSim};
use umanycore::experiments::parallel::map_with_threads;
use umanycore::{RoutingPolicy, RunReport, SimConfig, SystemSim, Workload};

use um_arch::config::{MachineConfig, TopologyShape};
use um_workload::{ServiceGraph, ServiceId, ServiceProfile, ServiceTimeDist};

/// Mean service time of the oracle's single service, microseconds.
const MEAN_SERVICE_US: f64 = 200.0;

/// Offered load `rho = lambda * E[S]`.
const RHO: f64 = 0.7;

/// Relative tolerance for measured-vs-closed-form means. The simulator's
/// service path adds small real costs on top of the sampled handler time
/// (hardware RPC processing ~0.05 us, the scheduling instruction, ~0.5%
/// coherence overhead), and a finite run estimates means with sampling
/// error, so exact agreement is not expected — but a queueing-model bug
/// (wrong wait accounting, lost work, double service) lands far outside
/// this band.
const TOLERANCE: f64 = 0.12;

/// A workload with one service, no RPCs, and the given service-time
/// distribution: exactly the M/G/1 service process.
fn single_service(compute: ServiceTimeDist) -> Workload {
    let id = ServiceId::new(0);
    let profile = ServiceProfile {
        name: "oracle",
        id,
        compute,
        storage_calls: 0,
        extra_storage_p: 0.0,
        extra_storage_max: 0,
        downstream: Vec::new(),
        storage_bytes: 0,
    };
    Workload::Graph {
        graph: ServiceGraph::new(vec![profile], vec![id]),
        root: Some(id),
    }
}

fn oracle_config(compute: ServiceTimeDist, seed: u64) -> SimConfig {
    // One core, one village, one cluster: a single-server queue.
    let machine = MachineConfig::umanycore_shaped(TopologyShape::new(1, 1, 1));
    let lambda_per_us = RHO / MEAN_SERVICE_US;
    SimConfig {
        machine,
        workload: single_service(compute),
        rps_per_server: lambda_per_us * 1e6,
        servers: 1,
        // Queue-wait sequences are strongly autocorrelated (busy-period
        // excursions), so the mean estimator needs far more raw samples
        // than an i.i.d. calculation suggests; 4 s x 3 seeds keeps its
        // error well inside the tolerance band.
        horizon_us: 4_000_000.0,
        warmup_us: 400_000.0,
        seed,
        ..SimConfig::default()
    }
}

fn run_at_threads(cfg: &SimConfig, threads: usize) -> RunReport {
    map_with_threads(threads, vec![cfg.clone()], |_, c| SystemSim::new(c).run())
        .pop()
        .expect("one config in, one report out")
}

fn assert_close(measured: f64, oracle: f64, what: &str) {
    let rel = (measured - oracle).abs() / oracle;
    assert!(
        rel < TOLERANCE,
        "{what}: measured {measured:.1} us vs closed-form {oracle:.1} us \
         ({:.1}% off, tolerance {:.0}%)",
        rel * 100.0,
        TOLERANCE * 100.0
    );
}

/// Runs one oracle scenario as a 3-seed sweep at `UM_THREADS` 1 and 4
/// (so the 4-thread pool genuinely runs concurrently), asserts the two
/// pools produce bit-identical results, and returns the sweep's reports.
fn run_both_thread_counts(cfg: SimConfig) -> Vec<RunReport> {
    let sweep: Vec<SimConfig> = (0..3)
        .map(|i| SimConfig {
            seed: cfg.seed + i,
            ..cfg.clone()
        })
        .collect();
    let run = |_, c: SimConfig| SystemSim::new(c).run();
    let serial = map_with_threads(1, sweep.clone(), run);
    let pooled = map_with_threads(4, sweep, run);
    for (s, p) in serial.iter().zip(&pooled) {
        assert_eq!(
            s.latency.mean.to_bits(),
            p.latency.mean.to_bits(),
            "UM_THREADS must not change results"
        );
        assert_eq!(s.queueing.mean.to_bits(), p.queueing.mean.to_bits());
        assert_eq!(s.completed, p.completed);
    }
    serial
}

fn mean_over(reports: &[RunReport], f: impl Fn(&RunReport) -> f64) -> f64 {
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

#[test]
fn mm1_mean_latency_matches_closed_form() {
    let reports = run_both_thread_counts(oracle_config(
        ServiceTimeDist::exponential(MEAN_SERVICE_US),
        101,
    ));
    for r in &reports {
        assert!(r.recorded > 3_000, "enough samples for a stable mean");
        assert!(r.conservation.exact(), "{:?}", r.conservation);
    }

    // M/M/1: W = E[S] / (1 - rho), Wq = rho E[S] / (1 - rho).
    let w = MEAN_SERVICE_US / (1.0 - RHO);
    let wq = RHO * MEAN_SERVICE_US / (1.0 - RHO);
    assert_close(
        mean_over(&reports, |r| r.latency.mean),
        w,
        "M/M/1 mean sojourn",
    );
    assert_close(
        mean_over(&reports, |r| r.queueing.mean),
        wq,
        "M/M/1 mean queue wait",
    );
}

#[test]
fn md1_mean_latency_matches_closed_form() {
    let reports = run_both_thread_counts(oracle_config(
        ServiceTimeDist::constant(MEAN_SERVICE_US),
        102,
    ));
    for r in &reports {
        assert!(r.recorded > 3_000, "enough samples for a stable mean");
        assert!(r.conservation.exact(), "{:?}", r.conservation);
    }

    // M/D/1: Wq = rho E[S] / (2 (1 - rho)), W = E[S] + Wq — half the
    // M/M/1 queueing, the classic variance effect.
    let wq = RHO * MEAN_SERVICE_US / (2.0 * (1.0 - RHO));
    let w = MEAN_SERVICE_US + wq;
    assert_close(
        mean_over(&reports, |r| r.latency.mean),
        w,
        "M/D/1 mean sojourn",
    );
    assert_close(
        mean_over(&reports, |r| r.queueing.mean),
        wq,
        "M/D/1 mean queue wait",
    );
}

/// A k-node rack of single-core oracle nodes with a near-transparent
/// fabric (10 ns one-way, no jitter), so cluster latencies are the
/// queueing model's plus sub-microsecond constants.
fn cluster_oracle_config(nodes: usize, routing: RoutingPolicy, seed: u64) -> ClusterConfig {
    let lambda_per_us = RHO / MEAN_SERVICE_US;
    ClusterConfig {
        node: SimConfig {
            machine: MachineConfig::umanycore_shaped(TopologyShape::new(1, 1, 1)),
            workload: single_service(ServiceTimeDist::exponential(MEAN_SERVICE_US)),
            ..SimConfig::default()
        },
        nodes,
        rps_per_node: lambda_per_us * 1e6,
        horizon_us: 4_000_000.0,
        warmup_us: 400_000.0,
        seed,
        routing,
        net: ClusterNetConfig {
            one_way_us: 0.01,
            jitter_us: None,
            ..ClusterNetConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// Runs one cluster oracle scenario as a 3-seed sweep at `UM_THREADS`
/// 1 and 4, asserts bit-identity between the pools, and returns the
/// sweep's reports.
fn run_cluster_both_thread_counts(cfg: ClusterConfig) -> Vec<ClusterReport> {
    let sweep: Vec<ClusterConfig> = (0..3)
        .map(|i| ClusterConfig {
            seed: cfg.seed + i,
            ..cfg.clone()
        })
        .collect();
    let run = |_, c: ClusterConfig| ClusterSim::new(c).run();
    let serial = map_with_threads(1, sweep.clone(), run);
    let pooled = map_with_threads(4, sweep, run);
    for (s, p) in serial.iter().zip(&pooled) {
        assert_eq!(
            s.latency.mean.to_bits(),
            p.latency.mean.to_bits(),
            "UM_THREADS must not change cluster results"
        );
        assert_eq!(s.cluster_hop.mean.to_bits(), p.cluster_hop.mean.to_bits());
        assert_eq!(s.completed, p.completed);
    }
    for r in &serial {
        assert!(r.recorded > 3_000, "enough samples for a stable mean");
        assert!(r.conservation.exact(), "{:?}", r.conservation);
    }
    serial
}

fn cluster_mean(reports: &[ClusterReport]) -> f64 {
    reports.iter().map(|r| r.latency.mean).sum::<f64>() / reports.len() as f64
}

/// Erlang-C: the probability an M/M/k arrival waits, via the Erlang-B
/// recurrence `B(0) = 1, B(j) = a B(j-1) / (j + a B(j-1))`.
fn erlang_c(k: usize, a: f64) -> f64 {
    let mut b = 1.0;
    for j in 1..=k {
        b = a * b / (j as f64 + a * b);
    }
    k as f64 * b / (k as f64 - a * (1.0 - b))
}

#[test]
fn random_routing_splits_into_independent_mm1_nodes() {
    let reports =
        run_cluster_both_thread_counts(cluster_oracle_config(4, RoutingPolicy::Random, 104));
    // Thinning a Poisson stream uniformly over k nodes leaves k Poisson
    // streams at rho = 0.7 each: the fleet mean is the M/M/1 sojourn.
    let w = MEAN_SERVICE_US / (1.0 - RHO);
    assert_close(cluster_mean(&reports), w, "random-routing fleet mean");
}

#[test]
fn central_queue_with_unit_admission_is_mmk() {
    let k = 4;
    let reports = run_cluster_both_thread_counts(ClusterConfig {
        max_in_flight: Some(1),
        ..cluster_oracle_config(k, RoutingPolicy::CentralQueue, 105)
    });
    // M/M/k, a = k rho erlangs: W = E[S] + C(k, a) E[S] / (k - a).
    let a = k as f64 * RHO;
    let wq = erlang_c(k, a) * MEAN_SERVICE_US / (k as f64 - a);
    let w = MEAN_SERVICE_US + wq;
    assert_close(cluster_mean(&reports), w, "M/M/4 fleet mean");
    // The wait happens at the load balancer, so it must be charged to
    // the cluster-hop component, not hidden inside the nodes.
    let hop = reports.iter().map(|r| r.cluster_hop.mean).sum::<f64>() / reports.len() as f64;
    assert_close(hop, wq, "M/M/4 cluster-hop (LB wait) mean");
}

#[test]
fn jsq2_lands_between_the_split_and_the_shared_queue() {
    let k = 8;
    let jsq = cluster_mean(&run_cluster_both_thread_counts(cluster_oracle_config(
        k,
        RoutingPolicy::JsqD { d: 2 },
        106,
    )));
    // Mean-field JSQ(d) with exponential service: the fraction of
    // servers holding >= i jobs is rho^((d^i - 1)/(d - 1)), so the mean
    // sojourn is E[S]/rho * sum_i rho^(2^i - 1) for d = 2. The limit is
    // exact as k -> infinity and a lower bound at finite k.
    let mut jobs = 0.0;
    let mut exponent = 1.0;
    for _ in 0..40 {
        jobs += RHO.powf(exponent);
        exponent = 2.0 * exponent + 1.0;
    }
    let mean_field = MEAN_SERVICE_US / RHO * jobs;
    let mm1 = MEAN_SERVICE_US / (1.0 - RHO);
    let a = k as f64 * RHO;
    let mmk = MEAN_SERVICE_US + erlang_c(k, a) * MEAN_SERVICE_US / (k as f64 - a);
    assert!(
        jsq > mean_field * (1.0 - TOLERANCE),
        "JSQ(2) fleet mean {jsq:.1} us below its mean-field limit {mean_field:.1} us"
    );
    assert!(
        jsq < mm1 * (1.0 + TOLERANCE),
        "JSQ(2) fleet mean {jsq:.1} us above the random-split M/M/1 mean {mm1:.1} us"
    );
    assert!(
        jsq > mmk * (1.0 - TOLERANCE),
        "JSQ(2) fleet mean {jsq:.1} us below the shared-queue M/M/{k} mean {mmk:.1} us"
    );
}

#[test]
fn md1_queues_less_than_mm1() {
    // The PK formula's variance term, end to end: deterministic service
    // must queue about half as much as exponential at equal load.
    let mm1 = run_at_threads(
        &oracle_config(ServiceTimeDist::exponential(MEAN_SERVICE_US), 103),
        1,
    );
    let md1 = run_at_threads(
        &oracle_config(ServiceTimeDist::constant(MEAN_SERVICE_US), 103),
        1,
    );
    let ratio = md1.queueing.mean / mm1.queueing.mean;
    assert!(
        (0.35..0.7).contains(&ratio),
        "M/D/1 vs M/M/1 queue-wait ratio {ratio} (theory: 0.5)"
    );
}
