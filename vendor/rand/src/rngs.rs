//! Generator implementations: [`SmallRng`] (xoshiro256++).

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++, the same
/// algorithm rand 0.8 uses for `SmallRng` on 64-bit platforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        // The upper bits have the best statistical quality.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state would be a fixed point; rand 0.8's SplitMix64
        // seeding never produces one, but guard the raw path too.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::from_seed([0; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn known_xoshiro_sequence() {
        // Reference vector: xoshiro256++ from state [1, 2, 3, 4].
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut r = SmallRng::from_seed(seed);
        // First output: rotl(s0 + s3, 23) + s0 = rotl(5, 23) + 1.
        assert_eq!(r.next_u64(), (5u64 << 23) + 1);
    }
}
