//! Distributions: [`Standard`] and uniform range sampling.

use crate::Rng;

pub mod uniform;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full range for integers, `[0, 1)`
/// for floats, balanced for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u32() >> 24) as u8
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Use the most significant bit: the highest-quality one.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1), as in rand 0.8.
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}
