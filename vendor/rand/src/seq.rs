//! Sequence utilities: [`SliceRandom`].

use crate::Rng;

/// Extension trait adding random operations to slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, matching rand 0.8's
    /// iteration order).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

/// Draws a uniform index below `ubound`, using the 32-bit sampling path
/// when possible (as rand 0.8 does).
fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize + 1 {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}
