//! Uniform sampling from ranges, mirroring rand 0.8's widening-multiply
//! rejection method for integers and the 52-bit mantissa method for
//! floats.

use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// A type whose half-open and inclusive ranges can be sampled uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(low, high, rng)
    }
}

/// Widening multiply of two `u64`s: `(high word, low word)`.
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let full = (a as u128) * (b as u128);
    ((full >> 64) as u64, full as u64)
}

/// Widening multiply of two `u32`s.
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let full = (a as u64) * (b as u64);
    ((full >> 32) as u32, full as u32)
}

/// Unbiased draw from `[0, span)` with `span > 0`, 64-bit path.
fn sample_span64<R: Rng + ?Sized>(span: u64, rng: &mut R) -> u64 {
    // Lemire's rejection method, as used by rand 0.8's sample_single:
    // accept v*span whose low word clears the bias zone.
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul64(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

/// Unbiased draw from `[0, span)` with `span > 0`, 32-bit path.
fn sample_span32<R: Rng + ?Sized>(span: u32, rng: &mut R) -> u32 {
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let (hi, lo) = wmul32(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! uniform_int_64 {
    ($($ty:ty => $uty:ty),+ $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $uty).wrapping_sub(low as $uty) as u64;
                low.wrapping_add(sample_span64(span, rng) as $ty)
            }

            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $uty).wrapping_sub(low as $uty) as u64;
                if span == <$uty>::MAX as u64 {
                    return rng.next_u64() as $ty;
                }
                low.wrapping_add(sample_span64(span + 1, rng) as $ty)
            }
        }
    )+};
}

macro_rules! uniform_int_32 {
    ($($ty:ty => $uty:ty),+ $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $uty).wrapping_sub(low as $uty) as u32;
                low.wrapping_add(sample_span32(span, rng) as $ty)
            }

            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $uty).wrapping_sub(low as $uty) as u32;
                if span == <$uty>::MAX as u32 {
                    return rng.next_u32() as $ty;
                }
                low.wrapping_add(sample_span32(span + 1, rng) as $ty)
            }
        }
    )+};
}

uniform_int_64!(u64 => u64, i64 => u64, usize => usize, isize => usize);
uniform_int_32!(u32 => u32, i32 => u32, u16 => u16, i16 => u16, u8 => u8, i8 => u8);

// f64: keep 52 mantissa bits; exponent field starts at bit 52 and the
// biased exponent of 1.0 is 0x3ff.
impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let scale = high - low;
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | 0x3ff0_0000_0000_0000);
        let value0_1 = value1_2 - 1.0;
        let res = value0_1 * scale + low;
        if res < high {
            res
        } else {
            f64::from_bits(high.to_bits() - 1)
        }
    }

    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let scale = high - low;
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | 0x3ff0_0000_0000_0000);
        let value0_1 = value1_2 - 1.0;
        (value0_1 * scale + low).min(high)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let scale = high - low;
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | 0x3f80_0000);
        let value0_1 = value1_2 - 1.0;
        let res = value0_1 * scale + low;
        if res < high {
            res
        } else {
            f32::from_bits(high.to_bits() - 1)
        }
    }

    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let scale = high - low;
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | 0x3f80_0000);
        let value0_1 = value1_2 - 1.0;
        (value0_1 * scale + low).min(high)
    }
}
