//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::SmallRng`] (xoshiro256++ with the SplitMix64 `seed_from_u64`
//! derivation, exactly as in rand 0.8), the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, uniform integer/float range sampling,
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! Everything here is deterministic: the same seed always yields the same
//! stream, on every platform, which is the property the simulator's
//! reproducibility tests rely on.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::uniform::SampleRange;
pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// exactly as rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let n = chunk.len().min(8);
            chunk[..n].copy_from_slice(&z.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Compare against p scaled to the full 64-bit range.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 10_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_half_open_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v), "{v}");
            let w = r.gen_range(0usize..7);
            assert!(w < 7);
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_reaches_both_ends() {
        let mut r = SmallRng::seed_from_u64(6);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_float() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_hits_every_small_bucket() {
        let mut r = SmallRng::seed_from_u64(8);
        let mut counts = [0u32; 8];
        for _ in 0..8_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500, "bucket {i} undersampled: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(9);
        let _ = r.gen_range(5u64..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(10);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let trues = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&trues), "{trues}");
    }

    #[test]
    fn bools_are_balanced() {
        let mut r = SmallRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = SmallRng::seed_from_u64(12);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut r = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn trait_object_rng_works() {
        let mut small = SmallRng::seed_from_u64(14);
        let r: &mut dyn RngCore = &mut small;
        let _ = r.next_u64();
    }
}
