//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of criterion its benches use:
//! [`Criterion`] with `bench_function` / `benchmark_group`,
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — calibrate an iteration count to
//! a target wall time, then report mean ns/iter over a few samples — but
//! the harness API matches, so benches compile and produce usable
//! numbers with `cargo bench`.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A parameterized benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Calibrates and measures `f`, recording mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it runs long enough to time.
        let mut batch: u64 = 1;
        let target = Duration::from_millis(50);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 30 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
                break;
            }
            // Aim past the target so the next round usually terminates.
            let grow = if elapsed.is_zero() {
                64
            } else {
                ((target.as_nanos() as f64 / elapsed.as_nanos() as f64) * 1.5).ceil() as u64
            };
            batch = batch.saturating_mul(grow.max(2)).min(1 << 30);
        }
    }
}

fn report(name: &str, ns: f64) {
    if ns >= 1e6 {
        println!("{name:<48} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<48} {:>12.3} us/iter", ns / 1e3);
    } else {
        println!("{name:<48} {ns:>12.1} ns/iter");
    }
}

fn run_one(name: &str, samples: usize, mut body: impl FnMut(&mut Bencher)) {
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        body(&mut b);
        best = best.min(b.ns_per_iter);
    }
    report(name, best);
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, body: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, 3, body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: 3,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 100);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, body);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, |b| {
            body(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(0)));
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        g.bench_with_input(BenchmarkId::from_parameter(1), &41, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
    }
}
