//! Collection strategies: `vec(element, size)`.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::Range;

/// A length specification for collection strategies: an exact `usize` or
/// a half-open `Range<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a strategy for `Vec`s with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
