//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of proptest it uses: the
//! [`Strategy`] trait with `prop_map`, range, tuple, array and [`Just`]
//! strategies, `prop_oneof!` (uniform and `weight => strategy`),
//! `proptest::collection::vec`, `proptest::option::of`,
//! `proptest::bool::ANY`, [`ProptestConfig`], and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Unlike upstream proptest this runner is **fully deterministic**: case
//! seeds derive from a fixed constant mixed with the case index, so a
//! failure reproduces on every run and every machine (shrinking is not
//! implemented; the failing inputs are printed instead). That trades
//! exploratory breadth for the reproducibility this project's tests
//! require.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

pub mod collection;

/// The per-case generator handed to strategy sampling. Re-exported so the
/// `proptest!` macro expansion does not require `rand` in the caller's
/// dependency graph.
pub type TestRng = SmallRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!` failures) tolerated before
    /// the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a formatted message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Builds a rejection from a formatted message.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Reject(m) => write!(f, "rejected: {m}"),
            Self::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of one type.
///
/// This vendored strategy samples directly from an RNG; there is no
/// intermediate value tree and therefore no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// A weighted choice among boxed strategies; built by the
/// `weight => strategy` form of `prop_oneof!`.
pub struct WeightedUnion<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Creates a weighted union over `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty or every weight is zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { options, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut SmallRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].sample(rng))
    }
}

/// `Option` strategies.
pub mod option {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen::<bool>() {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// Yields `None` and `Some(inner)` with equal probability
    /// (`proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A strategy yielding `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// The deterministic per-case seed: a SplitMix64 finalizer over a fixed
/// root, the hashed test name, and the case index.
fn case_seed(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `body` against `config.cases` deterministic cases.
///
/// This is the engine behind the `proptest!` macro; `body` receives a
/// per-case RNG from which the macro samples every declared strategy.
///
/// # Panics
///
/// Panics when a case fails (with the case index, so it can be replayed)
/// or when rejections exceed `config.max_global_rejects`.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut SmallRng) -> TestCaseResult,
) {
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng = SmallRng::seed_from_u64(case_seed(test_name, case));
        case += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case {} failed: {msg}", case - 1)
            }
        }
    }
}

/// Everything the `proptest!` macro and strategy combinators need.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", *l, *r);
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Choice among strategies with a common value type: uniform
/// (`prop_oneof![a, b]`) or weighted (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body against deterministic samples.
#[macro_export]
macro_rules! proptest {
    // Internal recursion arms first: the public catch-all would otherwise
    // swallow them.
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(
                stringify!($name),
                &config,
                |proptest_case_rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::sample(&$strategy, proptest_case_rng);)+
                    // `mut` is needed only when `$body` mutates captures;
                    // allow it to stay unused for pure bodies.
                    #[allow(unused_mut)]
                    let mut proptest_case_body = || -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    proptest_case_body()
                },
            );
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // With a leading #![proptest_config(..)].
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without configuration.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use ::rand::rngs::SmallRng;
    use ::rand::SeedableRng;

    #[test]
    fn case_seeds_are_deterministic_and_spread() {
        let a = case_seed("t", 0);
        let b = case_seed("t", 0);
        let c = case_seed("t", 1);
        let d = case_seed("u", 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.sample(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    proptest! {
        /// The macro itself: strategies bind, asserts pass, assume rejects.
        #[test]
        fn macro_end_to_end(a in 0u32..50, b in 10u64..20, flip in crate::bool::ANY) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert!((10..20).contains(&b));
            prop_assert_eq!(flip as u8 <= 1, true);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        /// Config plumbing: a cases override is honored (checked by running
        /// under a tight recursion/time budget — 7 cases must terminate).
        #[test]
        fn config_cases_override(x in 0i64..100) {
            prop_assert!(x >= 0);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_panic_with_case_index() {
        run_cases("doomed", &ProptestConfig::default(), |_rng| {
            Err(TestCaseError::fail("always fails"))
        });
    }

    proptest! {
        /// Vec strategies honor both exact and ranged sizes.
        #[test]
        fn vec_strategy_sizes(
            xs in crate::collection::vec(0u8..255, 1..50),
            ys in crate::collection::vec(0u8..255, 3),
        ) {
            prop_assert!((1..50).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 3);
        }
    }

    proptest! {
        /// Tuple and array strategies sample every component in bounds.
        #[test]
        fn tuple_and_array_strategies(
            pair in (0u32..10, 100u64..200),
            dims in [1usize..8, 1usize..8, 1usize..8],
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!((100..200).contains(&pair.1));
            prop_assert!(dims.iter().all(|&d| (1..8).contains(&d)));
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = crate::option::of(0u32..10);
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match s.sample(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }

    #[test]
    fn weighted_union_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let heavy = (0..1_000).filter(|_| s.sample(&mut rng)).count();
        // 9:1 odds; even a loose bound catches swapped or ignored weights.
        assert!(heavy > 700, "heavy arm drawn only {heavy}/1000 times");
    }
}
